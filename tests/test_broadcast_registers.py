"""Tests for broadcast primitives and the shared SWMR register array."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.net.broadcast import BestEffortBroadcast, ReliableBroadcast
from repro.net.latency import ConstantLatency
from repro.net.process import Process
from repro.net.registers import SharedRegister, SWMRRegisterArray

from tests.conftest import make_net


class BroadcastNode(Process):
    def __init__(self, pid, network, peers, reliable=True):
        super().__init__(pid, network)
        self.delivered = []
        callback = lambda origin, payload: self.delivered.append((origin, payload["v"]))
        if reliable:
            self.bcast = ReliableBroadcast(self, peers, callback)
        else:
            self.bcast = BestEffortBroadcast(self, peers, callback)


def build_nodes(net, count, reliable=True):
    peers = [f"n{i}" for i in range(1, count + 1)]
    return {pid: BroadcastNode(pid, net, peers, reliable=reliable) for pid in peers}


class TestBestEffortBroadcast:
    def test_delivers_to_everyone_including_self(self):
        loop, net = make_net()
        nodes = build_nodes(net, 4, reliable=False)
        nodes["n1"].bcast.broadcast({"v": "hello"})
        loop.run()
        assert all(node.delivered == [("n1", "hello")] for node in nodes.values())

    def test_self_delivery_is_immediate(self):
        loop, net = make_net(ConstantLatency(10.0))
        nodes = build_nodes(net, 3, reliable=False)
        nodes["n1"].bcast.broadcast({"v": 1})
        assert nodes["n1"].delivered == [("n1", 1)]

    def test_crashed_receiver_misses_message(self):
        loop, net = make_net()
        nodes = build_nodes(net, 3, reliable=False)
        net.crash("n3")
        nodes["n1"].bcast.broadcast({"v": "x"})
        loop.run()
        assert nodes["n3"].delivered == []
        assert nodes["n2"].delivered == [("n1", "x")]


class TestReliableBroadcast:
    def test_everyone_delivers_exactly_once(self):
        loop, net = make_net()
        nodes = build_nodes(net, 5)
        nodes["n2"].bcast.broadcast({"v": 42})
        loop.run()
        for node in nodes.values():
            assert node.delivered == [("n2", 42)]

    def test_two_broadcasts_from_same_origin_both_delivered(self):
        loop, net = make_net()
        nodes = build_nodes(net, 3)
        nodes["n1"].bcast.broadcast({"v": "a"})
        nodes["n1"].bcast.broadcast({"v": "b"})
        loop.run()
        for node in nodes.values():
            assert sorted(v for _, v in node.delivered) == ["a", "b"]

    def test_relay_reaches_partitioned_node_indirectly(self):
        """Agreement: a node cut off from the origin still delivers via relays."""
        loop, net = make_net(ConstantLatency(1.0))
        nodes = build_nodes(net, 3)
        # n1 cannot talk to n3 directly, but n2 talks to both.
        net.partition([["n1", "n2"], ["n3"]])
        nodes["n1"].bcast.broadcast({"v": "indirect"})
        loop.run()
        assert nodes["n2"].delivered == [("n1", "indirect")]
        assert nodes["n3"].delivered == []
        # Heal the n2<->n3 side: n2's relayed copy is released and n3 delivers,
        # even though n1 has crashed in the meantime.
        net.crash("n1")
        net.heal()
        loop.run()
        assert nodes["n3"].delivered == [("n1", "indirect")]

    def test_origin_delivers_even_if_alone(self):
        loop, net = make_net()
        nodes = build_nodes(net, 3)
        net.partition([["n1"], ["n2", "n3"]])
        nodes["n1"].bcast.broadcast({"v": "self"})
        assert nodes["n1"].delivered == [("n1", "self")]


class TestSharedRegister:
    def test_read_returns_written_value(self):
        register = SharedRegister(owner="s1", initial=None)
        register.write("s1", "value")
        assert register.read("anyone") == "value"

    def test_non_owner_write_rejected(self):
        register = SharedRegister(owner="s1")
        with pytest.raises(ConfigurationError):
            register.write("s2", "value")

    def test_unowned_register_accepts_any_writer(self):
        register = SharedRegister()
        register.write("s1", 1)
        register.write("s2", 2)
        assert register.read() == 2

    def test_counts_accesses(self):
        register = SharedRegister(owner="s1")
        register.write("s1", 1)
        register.read()
        register.read()
        assert register.write_count == 1
        assert register.read_count == 2


class TestSWMRRegisterArray:
    def test_each_server_writes_its_own_entry(self):
        array = SWMRRegisterArray(["s1", "s2", "s3"])
        array.write("s1", "a")
        array.write("s2", "b")
        assert array.read("s1") == "a"
        assert array.read("s2") == "b"
        assert array.read("s3") is None

    def test_snapshot(self):
        array = SWMRRegisterArray(["s1", "s2"])
        array.write("s1", 10)
        assert array.snapshot() == {"s1": 10, "s2": None}

    def test_unknown_owner_rejected(self):
        array = SWMRRegisterArray(["s1"])
        with pytest.raises(ConfigurationError):
            array.write("s9", 1)
        with pytest.raises(ConfigurationError):
            array.read("s9")

    def test_duplicate_owners_rejected(self):
        with pytest.raises(ConfigurationError):
            SWMRRegisterArray(["s1", "s1"])
