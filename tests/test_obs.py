"""Unit tests for ``repro.obs``: metrics, trace records, exporter, observer.

These tests exercise the observability layer in isolation — no simulation.
Integration (passivity, spec wiring, CLI, golden digests) lives in
``test_obs_integration.py``.
"""

from __future__ import annotations

import hashlib
import json

import pytest

from repro.errors import ConfigurationError
from repro.net.message import Message
from repro.obs import (
    DEFAULT_TIME_BOUNDS,
    MetricsRegistry,
    Observer,
    TraceRecorder,
    current_observer,
    install_observer,
    observing,
    read_trace,
    summarize_trace,
    to_chrome_trace,
    trace_digest,
    trace_lines,
    validate_record,
    write_chrome_trace,
    write_trace,
)
from repro.obs.metrics import MetricCounter, MetricGauge, MetricHistogram


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------


class TestMetrics:
    def test_counter_increments_and_rejects_negative(self):
        counter = MetricCounter("c")
        counter.inc()
        counter.inc(3)
        assert counter.value == 4
        with pytest.raises(ConfigurationError):
            counter.inc(-1)

    def test_gauge_tracks_value_and_maximum(self):
        gauge = MetricGauge("g")
        gauge.set(5.0)
        gauge.set(2.0)
        assert gauge.value == 2.0
        assert gauge.maximum == 5.0
        gauge.set_max(1.0)  # lower than the running max: no-op
        assert gauge.maximum == 5.0
        gauge.set_max(9.0)
        assert gauge.maximum == 9.0

    def test_histogram_buckets_are_value_le_bound(self):
        hist = MetricHistogram("h", bounds=(1.0, 2.0, 4.0))
        for value in (0.5, 1.0, 1.5, 3.0, 100.0):
            hist.observe(value)
        payload = hist.as_dict()
        assert payload["count"] == 5
        assert payload["sum"] == pytest.approx(106.0)
        # value <= bound lands in that bucket; the last bucket is overflow.
        assert payload["buckets"] == [
            {"le": 1.0, "count": 2},
            {"le": 2.0, "count": 1},
            {"le": 4.0, "count": 1},
            {"le": None, "count": 1},
        ]

    def test_histogram_rejects_bad_bounds(self):
        with pytest.raises(ConfigurationError):
            MetricHistogram("h", bounds=())
        with pytest.raises(ConfigurationError):
            MetricHistogram("h", bounds=(2.0, 1.0))
        with pytest.raises(ConfigurationError):
            MetricHistogram("h", bounds=(1.0, 1.0))

    def test_registry_get_or_create_and_bounds_conflict(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("b") is registry.gauge("b")
        hist = registry.histogram("lat", bounds=(1.0, 2.0))
        assert registry.histogram("lat", bounds=(1.0, 2.0)) is hist
        with pytest.raises(ConfigurationError):
            registry.histogram("lat", bounds=(1.0, 3.0))

    def test_registry_as_dict_is_sorted_and_json_safe(self):
        registry = MetricsRegistry()
        registry.counter("z").inc()
        registry.counter("a").inc(2)
        registry.gauge("depth").set_max(3.0)
        registry.histogram("lat", bounds=DEFAULT_TIME_BOUNDS).observe(1.5)
        payload = registry.as_dict()
        assert list(payload["counters"]) == ["a", "z"]
        assert payload["counters"] == {"a": 2, "z": 1}
        assert payload["gauges"]["depth"]["max"] == 3.0
        json.dumps(payload)  # must be serialisable as-is


# ---------------------------------------------------------------------------
# Trace recorder + canonical serialisation
# ---------------------------------------------------------------------------


class TestTraceRecorder:
    def test_emit_assigns_sequential_seq_and_optional_fields(self):
        recorder = TraceRecorder()
        recorder.emit(ts=1.0, cat="kernel", name="run", ph="B")
        recorder.emit(ts=2.0, cat="net", name="RC", ph="s",
                      actor="c1", args={"to": "s1"}, flow=7)
        first, second = recorder.records
        assert first == {"seq": 0, "ts": 1.0, "cat": "kernel", "name": "run", "ph": "B"}
        assert second["seq"] == 1
        assert second["actor"] == "c1"
        assert second["id"] == 7
        assert "actor" not in first and "args" not in first and "id" not in first

    def test_flow_ids_are_per_recorder(self):
        a, b = TraceRecorder(), TraceRecorder()
        assert [a.next_flow_id() for _ in range(3)] == [1, 2, 3]
        assert b.next_flow_id() == 1  # fresh recorder, fresh counter

    def test_digest_is_sha256_of_the_file_bytes(self, tmp_path):
        recorder = TraceRecorder()
        recorder.emit(ts=0.5, cat="fault", name="crash", ph="i", actor="s1")
        path = tmp_path / "t.jsonl"
        write_trace(recorder.records, str(path))
        assert trace_digest(recorder.records) == hashlib.sha256(
            path.read_bytes()).hexdigest()

    def test_write_read_round_trip(self, tmp_path):
        recorder = TraceRecorder()
        recorder.emit(ts=0.0, cat="op", name="read", ph="B", actor="c1")
        recorder.emit(ts=1.5, cat="op", name="read", ph="E", actor="c1",
                      args={"contacted": 3, "restarts": 0})
        path = tmp_path / "t.jsonl"
        write_trace(recorder.records, str(path))
        assert read_trace(str(path)) == recorder.records

    def test_trace_lines_are_canonical_json(self):
        recorder = TraceRecorder()
        recorder.emit(ts=0.0, cat="kernel", name="run", ph="i",
                      args={"b": 1, "a": 2})
        (line,) = trace_lines(recorder.records)
        # sort_keys + compact separators: byte-stable regardless of insertion order
        assert line == ('{"args":{"a":2,"b":1},"cat":"kernel","name":"run",'
                        '"ph":"i","seq":0,"ts":0.0}')


class TestValidateRecord:
    def _record(self, **overrides):
        record = {"seq": 0, "ts": 0.0, "cat": "net", "name": "RC", "ph": "i"}
        record.update(overrides)
        return record

    def test_accepts_minimal_and_full_records(self):
        assert validate_record(self._record()) == []
        assert validate_record(
            self._record(ph="s", id=3, actor="c1", args={"to": "s1"})) == []

    def test_rejects_missing_and_unknown_keys(self):
        assert any("missing required key 'seq'" in p for p in validate_record(
            {"ts": 0.0, "cat": "net", "name": "RC", "ph": "i"}))
        assert any("unknown key 'bogus'" in p
                   for p in validate_record(self._record(bogus=1)))

    def test_rejects_bad_category_phase_and_seq(self):
        assert validate_record(self._record(cat="nonsense"))
        assert validate_record(self._record(ph="X"))
        assert any("out of order" in p for p in
                   validate_record(self._record(seq=5), expect_seq=0))
        assert validate_record(self._record(seq=5), expect_seq=5) == []

    def test_flow_records_require_an_id(self):
        assert any("requires an 'id'" in p
                   for p in validate_record(self._record(ph="s")))
        assert any("requires an 'id'" in p
                   for p in validate_record(self._record(ph="f")))
        assert validate_record(self._record(ph="s", id=0)) == []

    def test_read_trace_reports_offending_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        good = '{"cat":"net","name":"RC","ph":"i","seq":0,"ts":0.0}'
        path.write_text(good + "\n" + "not json\n")
        with pytest.raises(ConfigurationError, match=r"bad\.jsonl:2: not valid JSON"):
            read_trace(str(path))
        path.write_text(good + "\n" + '{"cat":"net","ph":"i"}\n')
        with pytest.raises(ConfigurationError, match=r"bad\.jsonl:2: invalid trace"):
            read_trace(str(path))


# ---------------------------------------------------------------------------
# Chrome/Perfetto exporter + summaries
# ---------------------------------------------------------------------------


def _sample_records():
    recorder = TraceRecorder()
    recorder.emit(ts=0.0, cat="op", name="read", ph="B", actor="c1")
    recorder.emit(ts=0.25, cat="net", name="RC", ph="s", actor="c1",
                  args={"to": "s1"}, flow=0)
    recorder.emit(ts=1.0, cat="net", name="RC", ph="f", actor="s1", flow=0)
    recorder.emit(ts=1.5, cat="fault", name="crash", ph="i", actor="s2")
    recorder.emit(ts=2.0, cat="op", name="read", ph="E", actor="c1",
                  args={"contacted": 3, "restarts": 0})
    return recorder.records


class TestChromeExport:
    def test_structure_thread_mapping_and_microseconds(self):
        payload = to_chrome_trace(_sample_records())
        events = payload["traceEvents"]
        assert payload["displayTimeUnit"] == "ms"
        metadata = [e for e in events if e["ph"] == "M"]
        # one thread_name record per distinct actor, sorted
        assert [e["args"]["name"] for e in metadata] == ["c1", "s1", "s2"]
        tids = {e["args"]["name"]: e["tid"] for e in metadata}
        begin = next(e for e in events if e["ph"] == "B")
        assert begin["tid"] == tids["c1"]
        assert begin["ts"] == 0  # virtual seconds -> microseconds
        flow_start = next(e for e in events if e["ph"] == "s")
        assert flow_start["ts"] == 250000
        assert flow_start["bp"] == "e"
        instant = next(e for e in events if e["ph"] == "i")
        assert instant["s"] == "t"

    def test_empty_actor_maps_to_kernel_thread(self):
        recorder = TraceRecorder()
        recorder.emit(ts=0.0, cat="kernel", name="run", ph="i")
        payload = to_chrome_trace(recorder.records)
        (metadata,) = [e for e in payload["traceEvents"] if e["ph"] == "M"]
        assert metadata["args"]["name"] == "(kernel)"

    def test_write_chrome_trace_is_valid_json(self, tmp_path):
        path = tmp_path / "chrome.json"
        write_chrome_trace(_sample_records(), str(path))
        loaded = json.loads(path.read_text())
        assert "traceEvents" in loaded

    def test_flow_arrows_survive_export_as_paired_s_f_events(self):
        recorder = TraceRecorder()
        read_flow = recorder.next_flow_id()
        write_flow = recorder.next_flow_id()
        recorder.emit(ts=0.0, cat="net", name="RC", ph="s", actor="c1",
                      flow=read_flow)
        recorder.emit(ts=0.1, cat="net", name="WC", ph="s", actor="c1",
                      flow=write_flow)
        recorder.emit(ts=1.0, cat="net", name="RC", ph="f", actor="s1",
                      flow=read_flow)
        recorder.emit(ts=1.5, cat="net", name="WC", ph="f", actor="s2",
                      flow=write_flow)
        events = to_chrome_trace(recorder.records)["traceEvents"]
        starts = {e["id"]: e for e in events if e["ph"] == "s"}
        finishes = {e["id"]: e for e in events if e["ph"] == "f"}
        # every start has exactly one finish with the same id and name,
        # and both carry the binding-point marker Perfetto needs to draw
        # the arrow to the enclosing slice
        assert set(starts) == set(finishes) == {read_flow, write_flow}
        for flow_id, start in starts.items():
            finish = finishes[flow_id]
            assert finish["name"] == start["name"]
            assert start["bp"] == "e" and finish["bp"] == "e"
            assert finish["ts"] > start["ts"]
            assert finish["tid"] != start["tid"]  # arrow crosses actors


class TestSummarizeTrace:
    def test_span_matching_and_category_counts(self):
        summary = summarize_trace(_sample_records())
        assert summary["records"] == 5
        assert summary["first_ts"] == 0.0
        assert summary["last_ts"] == 2.0
        assert summary["by_category"] == {"fault": 1, "net": 2, "op": 2}
        span = summary["spans"]["op/read"]
        assert span["count"] == 1
        assert span["total_time"] == pytest.approx(2.0)
        assert summary["open_spans"] == 0
        assert summary["unmatched_ends"] == 0

    def test_unbalanced_spans_are_reported_not_dropped(self):
        recorder = TraceRecorder()
        recorder.emit(ts=0.0, cat="op", name="read", ph="B", actor="c1")
        recorder.emit(ts=1.0, cat="op", name="write", ph="E", actor="c2")
        summary = summarize_trace(recorder.records)
        assert summary["open_spans"] == 1
        assert summary["unmatched_ends"] == 1

    def test_nested_same_name_spans_match_lifo(self):
        # Recursive spans on one actor (the weight-gain refresh shape):
        # B(0) B(1) E(3) E(7) pairs inner-first — durations (3-1) + (7-0),
        # every level accounted exactly once.
        recorder = TraceRecorder()
        recorder.emit(ts=0.0, cat="op", name="refresh", ph="B", actor="s1")
        recorder.emit(ts=1.0, cat="op", name="refresh", ph="B", actor="s1")
        recorder.emit(ts=3.0, cat="op", name="refresh", ph="E", actor="s1")
        recorder.emit(ts=7.0, cat="op", name="refresh", ph="E", actor="s1")
        summary = summarize_trace(recorder.records)
        span = summary["spans"]["op/refresh"]
        assert span["count"] == 2
        assert span["total_time"] == pytest.approx(2.0 + 7.0)
        assert summary["open_spans"] == 0
        assert summary["unmatched_ends"] == 0

    def test_nested_spans_interleaved_across_actors_stay_separate(self):
        recorder = TraceRecorder()
        recorder.emit(ts=0.0, cat="op", name="read", ph="B", actor="c1")
        recorder.emit(ts=0.5, cat="op", name="read", ph="B", actor="c2")
        recorder.emit(ts=2.0, cat="op", name="read", ph="E", actor="c1")
        recorder.emit(ts=4.0, cat="op", name="read", ph="E", actor="c2")
        span = summarize_trace(recorder.records)["spans"]["op/read"]
        assert span["count"] == 2
        # c1 gets 2.0 and c2 gets 3.5 -- the stacks are per (actor, name)
        assert span["total_time"] == pytest.approx(5.5)


# ---------------------------------------------------------------------------
# Observer installation + hooks
# ---------------------------------------------------------------------------


class TestObserverInstallation:
    def test_default_is_no_observer(self):
        assert current_observer() is None

    def test_observing_installs_and_restores(self):
        observer = Observer()
        with observing(observer):
            assert current_observer() is observer
        assert current_observer() is None

    def test_observing_restores_on_exception(self):
        observer = Observer()
        with pytest.raises(RuntimeError):
            with observing(observer):
                raise RuntimeError("boom")
        assert current_observer() is None

    def test_observing_none_masks_an_outer_observer(self):
        outer = Observer()
        with observing(outer):
            with observing(None):
                assert current_observer() is None
            assert current_observer() is outer

    def test_install_observer_returns_previous(self):
        first, second = Observer(), Observer()
        assert install_observer(first) is None
        assert install_observer(second) is first
        assert install_observer(None) is second


class TestObserverHooks:
    def test_message_sent_stamps_flow_and_delivered_closes_it(self):
        observer = Observer()
        message = Message(sender="c1", receiver="s1", kind="RC")
        observer.message_sent(message, now=1.0)
        observer.message_delivered(message, now=2.0)
        start, finish = observer.trace.records
        assert start["ph"] == "s" and finish["ph"] == "f"
        assert start["id"] == finish["id"] == message.trace_flow
        counters = observer.metrics.as_dict()["counters"]
        assert counters["net.sent"] == counters["net.sent.RC"] == 1
        assert counters["net.delivered"] == 1

    def test_delivery_without_flow_stamp_skips_trace(self):
        # A message sent before the observer was installed has no flow id;
        # delivery still counts but emits no dangling flow-finish record.
        observer = Observer()
        message = Message(sender="c1", receiver="s1", kind="RC")
        observer.message_delivered(message, now=2.0)
        assert observer.metrics.as_dict()["counters"]["net.delivered"] == 1
        assert observer.trace.records == []

    def test_trace_messages_false_counts_but_does_not_trace(self):
        observer = Observer(trace_messages=False)
        message = Message(sender="c1", receiver="s1", kind="RC")
        observer.message_sent(message, now=1.0)
        assert observer.metrics.as_dict()["counters"]["net.sent"] == 1
        assert observer.trace.records == []

    def test_operation_lifecycle_counts_and_latency_histogram(self):
        observer = Observer()
        observer.operation_started("abd", "c1", "read", now=0.0)
        observer.operation_completed("abd", "c1", "read", now=3.0,
                                     restarts=0, contacted=3, latency=3.0)
        payload = observer.metrics.as_dict()
        assert payload["counters"]["abd.ops.read"] == 1
        assert "abd.restarts" not in payload["counters"]  # zero restarts: no counter
        assert payload["histograms"]["abd.op_latency"]["count"] == 1
        begin, end = observer.trace.records
        assert (begin["ph"], end["ph"]) == ("B", "E")
        assert end["args"] == {"contacted": 3, "restarts": 0}

    def test_weight_gain_refresh_tracks_max_depth(self):
        observer = Observer()
        for depth in (1, 2, 3, 1):
            observer.weight_gain_refresh("s1", depth, now=1.0)
        payload = observer.metrics.as_dict()
        assert payload["counters"]["storage.weight_gain_refreshes"] == 4
        assert payload["gauges"]["storage.weight_gain_refresh_depth"]["max"] == 3.0

    def test_metrics_only_observer_has_no_trace(self):
        observer = Observer(trace=False)
        assert observer.trace is None
        observer.kernel_run(ready_hits=5, heap_hits=2, max_depth=4)
        counters = observer.metrics.as_dict()["counters"]
        assert counters["kernel.events"] == 7
        assert counters["kernel.ready_dispatches"] == 5
        assert counters["kernel.heap_dispatches"] == 2
