"""CLI tests: in-process `main()` calls plus one real `python -m repro` smoke."""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

from repro.experiments.cli import main

FAST = ["-p", "workload.operations_per_client=2"]


class TestListCommand:
    def test_list_shows_registered_scenarios(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("quickstart", "fig1-walkthrough", "wmqs-vs-mqs",
                     "epoch-vs-epochless", "storage-vs-reconfig"):
            assert name in out

    def test_list_json_and_tag_filter(self, capsys):
        assert main(["list", "--json", "--tag", "smoke"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [entry["name"] for entry in payload] == ["quickstart"]
        assert "cluster.n" in payload[0]["parameters"]


class TestRunCommand:
    def test_run_prints_result_json(self, capsys):
        assert main(["run", "quickstart", *FAST]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["scenario"] == "quickstart"
        # 2 clients x 2 operations per client
        assert payload[0]["result"]["operations"] == 4

    def test_run_writes_json_file(self, tmp_path, capsys):
        out_path = tmp_path / "run.json"
        assert main(["run", "quickstart", *FAST, "--json", str(out_path), "--quiet"]) == 0
        payload = json.loads(out_path.read_text())
        assert payload[0]["result"]["operations"] == 4

    def test_run_unknown_scenario_fails_with_listing(self, capsys):
        assert main(["run", "no-such-scenario"]) == 2
        assert "quickstart" in capsys.readouterr().err

    def test_run_bad_param_syntax_fails(self, capsys):
        assert main(["run", "quickstart", "-p", "seed"]) == 2
        assert "key=value" in capsys.readouterr().err


class TestSweepCommand:
    def test_sweep_workers_produce_identical_json(self, tmp_path, capsys):
        args = ["sweep", "quickstart", "-g", "cluster.n=4,5", "--seeds", "0,1",
                "-p", "workload.operations_per_client=2", "-p", "cluster.f=1", "--quiet"]
        serial = tmp_path / "serial.json"
        parallel = tmp_path / "parallel.json"
        assert main([*args, "--workers", "1", "--json", str(serial)]) == 0
        assert main([*args, "--workers", "4", "--json", str(parallel)]) == 0
        assert serial.read_text() == parallel.read_text()
        payload = json.loads(serial.read_text())
        assert len(payload) == 4
        assert sorted({entry["params"]["cluster.n"] for entry in payload}) == [4, 5]

    def test_sweep_csv_sink(self, tmp_path, capsys):
        out_path = tmp_path / "sweep.csv"
        assert main(["sweep", "quickstart", "--seeds", "0,1", *FAST,
                     "--csv", str(out_path), "--quiet"]) == 0
        lines = out_path.read_text().strip().splitlines()
        assert len(lines) == 3


class TestCompareCommand:
    def test_compare_identical_and_diverging(self, tmp_path, capsys):
        first = tmp_path / "first.json"
        second = tmp_path / "second.json"
        assert main(["run", "quickstart", *FAST, "--json", str(first), "--quiet"]) == 0
        assert main(["run", "quickstart", *FAST, "--json", str(second), "--quiet"]) == 0
        assert main(["compare", str(first), str(second)]) == 0
        assert "results match" in capsys.readouterr().out

        assert main(["run", "quickstart", "-p", "workload.operations_per_client=3",
                     "--json", str(second), "--quiet"]) == 0
        assert main(["compare", str(first), str(second)]) == 1
        assert "difference(s) found" in capsys.readouterr().out

    def test_compare_missing_file_fails_cleanly(self, tmp_path, capsys):
        missing = tmp_path / "missing.json"
        present = tmp_path / "present.json"
        assert main(["run", "quickstart", *FAST, "--json", str(present), "--quiet"]) == 0
        assert main(["compare", str(present), str(missing)]) == 2

    def test_compare_malformed_json_fails_cleanly(self, tmp_path, capsys):
        present = tmp_path / "present.json"
        corrupt = tmp_path / "corrupt.json"
        assert main(["run", "quickstart", *FAST, "--json", str(present), "--quiet"]) == 0
        corrupt.write_text('[{"run_id": "tru')
        assert main(["compare", str(present), str(corrupt)]) == 2
        assert "error:" in capsys.readouterr().err


def test_python_dash_m_repro_list_smoke():
    """`python -m repro list` works as a real subprocess (the CI smoke step)."""
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    completed = subprocess.run(
        [sys.executable, "-m", "repro", "list"],
        capture_output=True, text=True, env=env, timeout=120,
    )
    assert completed.returncode == 0, completed.stderr
    assert "quickstart" in completed.stdout
    assert "fig1-walkthrough" in completed.stdout


class TestSweepSamplingCli:
    def test_sample_runs_n_points_deterministically(self, tmp_path, capsys):
        args = ["sweep", "quickstart", "-g", "cluster.n=4,5,6", "--seeds", "0,1,2,3",
                "-p", "workload.operations_per_client=2", "-p", "cluster.f=1",
                "--sample", "3", "--sample-seed", "5", "--quiet", "--no-progress"]
        first = tmp_path / "first.json"
        second = tmp_path / "second.json"
        assert main([*args, "--json", str(first)]) == 0
        assert main([*args, "--workers", "3", "--json", str(second)]) == 0
        assert first.read_text() == second.read_text()
        assert len(json.loads(first.read_text())) == 3

    def test_point_mode_runs_explicit_points(self, tmp_path, capsys):
        out = tmp_path / "points.json"
        assert main(["sweep", "quickstart",
                     "--point", "cluster.n=4 cluster.f=1",
                     "--point", "cluster.n=5 cluster.f=2",
                     "-p", "workload.operations_per_client=2",
                     "--json", str(out), "--quiet", "--no-progress"]) == 0
        payload = json.loads(out.read_text())
        assert [entry["params"]["cluster.n"] for entry in payload] == [4, 5]

    def test_point_cannot_combine_with_grid(self, capsys):
        assert main(["sweep", "quickstart", "-g", "seed=0,1",
                     "--point", "cluster.n=4"]) == 2
        assert "--point" in capsys.readouterr().err


class TestSweepStreamingCli:
    def test_jsonl_sink_streams_and_compares_clean(self, tmp_path, capsys):
        jsonl = tmp_path / "stream.jsonl"
        array = tmp_path / "array.json"
        args = ["sweep", "quickstart", "--seeds", "0,1", *FAST, "--quiet"]
        assert main([*args, "--jsonl", str(jsonl), "--no-progress"]) == 0
        assert main([*args, "--json", str(array), "--no-progress"]) == 0
        lines = [line for line in jsonl.read_text().splitlines() if line.strip()]
        assert len(lines) == 2
        # The JSONL payload compares clean against the array payload.
        assert main(["compare", str(jsonl), str(array)]) == 0

    def test_progress_reported_per_run(self, capsys):
        assert main(["sweep", "quickstart", "--seeds", "0,1", *FAST, "--quiet"]) == 0
        err = capsys.readouterr().err
        assert "[1/2]" in err and "[2/2]" in err


class TestSweepResilienceCli:
    """Surface-level checks for the resilience flags; the deep kill/resume
    coverage lives in tests/test_resilience.py."""

    def test_journaled_sweep_matches_plain_and_reports_summary(
        self, tmp_path, capsys
    ):
        args = ["sweep", "quickstart", "--seeds", "0,1", *FAST,
                "--quiet", "--no-progress"]
        plain = tmp_path / "plain.json"
        journaled = tmp_path / "journaled.json"
        journal = tmp_path / "sweep.journal.jsonl"
        assert main([*args, "--json", str(plain)]) == 0
        capsys.readouterr()
        assert main([*args, "--json", str(journaled),
                     "--journal", str(journal)]) == 0
        err = capsys.readouterr().err
        assert plain.read_text() == journaled.read_text()
        assert "resilience: resumed 0, retries 0" in err
        # Header line, one line per run, and the final summary line.
        lines = journal.read_text().splitlines()
        assert len(lines) == 4

    def test_resume_skips_journaled_runs(self, tmp_path, capsys):
        args = ["sweep", "quickstart", "--seeds", "0,1", *FAST, "--quiet"]
        journal = tmp_path / "sweep.journal.jsonl"
        reference = tmp_path / "reference.json"
        resumed = tmp_path / "resumed.json"
        assert main([*args, "--no-progress", "--json", str(reference),
                     "--journal", str(journal)]) == 0
        truncated = tmp_path / "truncated.jsonl"
        truncated.write_text(
            "\n".join(journal.read_text().splitlines()[:2]) + "\n")
        capsys.readouterr()
        assert main([*args, "--json", str(resumed),
                     "--resume", str(truncated)]) == 0
        err = capsys.readouterr().err
        assert reference.read_text() == resumed.read_text()
        assert "(resumed 1)" in err  # progress suffix marks replayed runs
        assert "resilience: resumed 1" in err

    def test_conflicting_journal_and_resume_paths_rejected(
        self, tmp_path, capsys
    ):
        assert main(["sweep", "quickstart", "--seeds", "0", *FAST, "--quiet",
                     "--journal", str(tmp_path / "a.jsonl"),
                     "--resume", str(tmp_path / "b.jsonl")]) == 2
        assert "give one path" in capsys.readouterr().err


class TestWorkloadScenariosCli:
    def test_list_shows_workload_scenarios(self, capsys):
        assert main(["list", "--tag", "workload"]) == 0
        out = capsys.readouterr().out
        for name in ("skewed-reassignment", "open-loop-saturation",
                     "hotspot-shift", "hotspot-shift-monitoring"):
            assert name in out

    def test_run_skewed_reassignment_deterministically(self, tmp_path, capsys):
        first = tmp_path / "first.json"
        second = tmp_path / "second.json"
        fast = ["-p", "workload.operations_per_client=3"]
        assert main(["run", "skewed-reassignment", *fast,
                     "--json", str(first), "--quiet"]) == 0
        assert main(["run", "skewed-reassignment", *fast,
                     "--json", str(second), "--quiet"]) == 0
        assert first.read_text() == second.read_text()
        result = json.loads(first.read_text())[0]["result"]
        assert result["workload"]["keys"]["top1_share"] > 1.0 / 32

    def test_zipf_sweep_over_workload_keys(self, tmp_path, capsys):
        out = tmp_path / "zipf.json"
        assert main(["sweep", "skewed-reassignment",
                     "-g", "workload.keys.zipf_s=0.8,1.6",
                     "-p", "workload.operations_per_client=3",
                     "--json", str(out), "--quiet", "--no-progress"]) == 0
        payload = json.loads(out.read_text())
        assert len(payload) == 2
        shares = [entry["result"]["workload"]["keys"]["top1_share"]
                  for entry in payload]
        assert shares[1] > shares[0]  # steeper zipf, hotter hottest key
