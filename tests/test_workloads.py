"""Tests for the composable workload subsystem: keys, arrivals, mixes,
phases, the generator, statistical self-description, traces, and the
open-loop runner integration."""

from __future__ import annotations

import random
from collections import Counter

import pytest

from repro.core.spec import SystemConfig
from repro.errors import ConfigurationError
from repro.sim.cluster import build_dynamic_cluster
from repro.sim.runner import run_workload
from repro.sim.workload import Operation, Workload
from repro.workloads import (
    ClosedLoopArrivals,
    HotspotKeys,
    OnOffArrivals,
    OperationMix,
    Phase,
    PoissonArrivals,
    UniformKeys,
    WorkloadGenerator,
    ZipfianKeys,
    key_name,
    read_trace,
    workload_stats,
    write_trace,
)


# ---------------------------------------------------------------------------
# Key distributions
# ---------------------------------------------------------------------------


class TestKeyDistributions:
    def test_zipfian_frequency_ranking(self):
        """Rank-i keys come out in popularity order: k1 hottest, then k2, ..."""
        keys = ZipfianKeys(space=8, s=1.2)
        rng = random.Random(42)
        counts = Counter(keys.sample(rng) for _ in range(4000))
        assert counts["k1"] > counts["k2"] > counts["k3"]
        # s=1.2 over 8 keys gives k1 ~40% of the mass; uniform would be 12.5%.
        assert counts["k1"] / 4000 > 0.3

    def test_zipfian_more_skewed_with_larger_s(self):
        rng_a, rng_b = random.Random(1), random.Random(1)
        mild = Counter(ZipfianKeys(8, s=0.5).sample(rng_a) for _ in range(3000))
        steep = Counter(ZipfianKeys(8, s=2.0).sample(rng_b) for _ in range(3000))
        assert steep["k1"] > mild["k1"]

    def test_uniform_covers_the_space_evenly(self):
        keys = UniformKeys(space=4)
        rng = random.Random(7)
        counts = Counter(keys.sample(rng) for _ in range(4000))
        assert set(counts) == {"k1", "k2", "k3", "k4"}
        assert max(counts.values()) < 1.2 * min(counts.values())

    def test_hotspot_concentrates_traffic(self):
        keys = HotspotKeys(space=16, hot_fraction=0.25, hot_weight=0.9)
        rng = random.Random(3)
        counts = Counter(keys.sample(rng) for _ in range(2000))
        hot = sum(counts[key] for key in keys.hot_keys())
        assert keys.hot_keys() == ("k1", "k2", "k3", "k4")
        assert hot / 2000 == pytest.approx(0.9, abs=0.03)

    def test_hotspot_covering_whole_space_is_uniform(self):
        """hot_fraction=1.0 degenerates to uniform regardless of hot_weight."""
        keys = HotspotKeys(space=4, hot_fraction=1.0, hot_weight=0.5)
        rng = random.Random(13)
        counts = Counter(keys.sample(rng) for _ in range(4000))
        assert set(counts) == {"k1", "k2", "k3", "k4"}
        assert max(counts.values()) < 1.2 * min(counts.values())

    def test_hotspot_shift_rotates_the_hot_set(self):
        keys = HotspotKeys(space=16, hot_fraction=0.25, hot_weight=0.9)
        shifted = keys.shifted(8)
        assert shifted.hot_keys() == ("k9", "k10", "k11", "k12")
        assert set(keys.hot_keys()).isdisjoint(shifted.hot_keys())

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            UniformKeys(space=0)
        with pytest.raises(ConfigurationError):
            ZipfianKeys(space=8, s=0.0)
        with pytest.raises(ConfigurationError):
            HotspotKeys(space=8, hot_fraction=0.0)
        with pytest.raises(ConfigurationError):
            HotspotKeys(space=8, hot_weight=1.5)
        with pytest.raises(ConfigurationError):
            key_name(0)


# ---------------------------------------------------------------------------
# Arrival processes
# ---------------------------------------------------------------------------


class TestArrivalProcesses:
    def test_poisson_interarrival_mean(self):
        """Open-loop Poisson gaps average 1/rate."""
        arrivals = PoissonArrivals(rate=2.0)
        rng = random.Random(11)
        now, gaps = 0.0, []
        for _ in range(3000):
            _, at = arrivals.next_event(rng, now)
            gaps.append(at - now)
            now = at
        assert sum(gaps) / len(gaps) == pytest.approx(0.5, rel=0.05)

    def test_closed_loop_returns_relative_think_times(self):
        arrivals = ClosedLoopArrivals(mean_think_time=2.0)
        rng = random.Random(5)
        thinks = []
        for _ in range(2000):
            after, at = arrivals.next_event(rng, 0.0)
            assert at is None
            thinks.append(after)
        assert sum(thinks) / len(thinks) == pytest.approx(2.0, rel=0.1)

    def test_zero_think_time_degenerates_to_back_to_back(self):
        assert ClosedLoopArrivals(0.0).next_event(random.Random(0), 5.0) == (0.0, None)

    def test_onoff_arrivals_land_inside_bursts(self):
        arrivals = OnOffArrivals(burst_rate=4.0, burst_length=5.0, idle_time=10.0)
        rng = random.Random(9)
        now = 0.0
        for _ in range(500):
            _, at = arrivals.next_event(rng, now)
            assert at > now
            assert at % 15.0 < 5.0  # inside the on-window of its cycle
            now = at

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            ClosedLoopArrivals(-1.0)
        with pytest.raises(ConfigurationError):
            PoissonArrivals(0.0)
        with pytest.raises(ConfigurationError):
            OnOffArrivals(burst_rate=0.0)
        with pytest.raises(ConfigurationError):
            OperationMix(read_ratio=1.5)
        with pytest.raises(ConfigurationError):
            OperationMix(keys_per_op=0)


# ---------------------------------------------------------------------------
# Generator: determinism, phases, multi-key
# ---------------------------------------------------------------------------


class TestWorkloadGenerator:
    def _generator(self):
        return WorkloadGenerator(
            keys=ZipfianKeys(space=16, s=1.1),
            arrivals=PoissonArrivals(rate=1.0),
            mix=OperationMix(read_ratio=0.6),
        )

    def test_same_seed_produces_identical_trace(self):
        a = self._generator().generate(["c1", "c2"], 50, seed=4)
        b = self._generator().generate(["c1", "c2"], 50, seed=4)
        assert a.operations == b.operations

    def test_different_seeds_differ(self):
        a = self._generator().generate(["c1"], 50, seed=4)
        b = self._generator().generate(["c1"], 50, seed=5)
        assert a.operations != b.operations

    def test_client_stream_independent_of_other_clients(self):
        """A client's sequence depends only on the seed and its own name.

        (The forced first write of the first client is the single exception,
        so compare clients that are not first.)
        """
        together = self._generator().generate(["c1", "c2"], 20, seed=1)
        more = self._generator().generate(["c1", "c2", "c3"], 20, seed=1)
        assert together.for_client("c2") == more.for_client("c2")
        assert together.for_client("c1") == more.for_client("c1")

    def test_first_operation_of_first_client_is_a_write(self):
        workload = self._generator().generate(["c1", "c2"], 10, seed=0)
        assert workload.for_client("c1")[0].kind == "write"

    def test_open_loop_issue_times_are_absolute_and_monotone(self):
        workload = self._generator().generate(["c1"], 30, seed=2)
        times = [op.issue_at for op in workload.operations]
        assert all(at is not None for at in times)
        assert times == sorted(times)

    def test_closed_loop_operations_have_no_issue_at(self):
        generator = WorkloadGenerator(arrivals=ClosedLoopArrivals(1.0))
        workload = generator.generate(["c1"], 10, seed=0)
        assert all(op.issue_at is None for op in workload.operations)
        assert all(op.key is not None for op in workload.operations)

    def test_phase_flips_the_key_distribution(self):
        generator = WorkloadGenerator(
            keys=HotspotKeys(space=16, hot_fraction=0.25, hot_weight=1.0),
            arrivals=PoissonArrivals(rate=1.0),
            phases=(
                Phase(start=100.0,
                      keys=HotspotKeys(space=16, hot_fraction=0.25,
                                       hot_weight=1.0, offset=8)),
            ),
        )
        workload = generator.generate(["c1"], 300, seed=6)
        early = {op.key for op in workload.operations if op.issue_at < 100.0}
        late = {op.key for op in workload.operations if op.issue_at >= 100.0}
        assert early <= {"k1", "k2", "k3", "k4"}
        assert late <= {"k9", "k10", "k11", "k12"}

    def test_multi_key_operations_share_kind_and_timing(self):
        generator = WorkloadGenerator(
            arrivals=PoissonArrivals(rate=1.0),
            mix=OperationMix(read_ratio=0.5, keys_per_op=3),
        )
        workload = generator.generate(["c1"], 10, seed=1)
        assert len(workload.operations) == 30
        for index in range(0, 30, 3):
            batch = workload.operations[index:index + 3]
            assert len({op.kind for op in batch}) == 1
            assert batch[0].issue_at is not None
            assert all(op.issue_at is None for op in batch[1:])

    def test_describe_reports_the_configured_axes(self):
        description = self._generator().describe()
        assert description["keys"]["kind"] == "zipfian"
        assert description["arrivals"] == {"kind": "poisson", "rate": 1.0}
        assert description["mix"]["read_ratio"] == 0.6

    def test_empty_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            self._generator().generate([], 10)
        with pytest.raises(ConfigurationError):
            self._generator().generate(["c1"], 0)


# ---------------------------------------------------------------------------
# Statistical self-description
# ---------------------------------------------------------------------------


class TestWorkloadStats:
    def test_stats_report_achieved_skew_and_rate(self):
        generator = WorkloadGenerator(
            keys=ZipfianKeys(space=32, s=1.5),
            arrivals=PoissonArrivals(rate=2.0),
            mix=OperationMix(read_ratio=0.75),
        )
        workload = generator.generate(["c1", "c2"], 400, seed=8)
        stats = workload_stats(workload)
        assert stats["operations"] == 800
        assert stats["clients"] == 2
        assert stats["read_fraction"] == pytest.approx(0.75, abs=0.05)
        assert stats["keys"]["top1_share"] > 1.5 / 32  # well above uniform
        assert stats["arrivals"]["open_loop_fraction"] == 1.0
        assert stats["arrivals"]["mean_interarrival"] == pytest.approx(0.5, rel=0.1)
        # Two clients at rate 2.0 each offer ~4 ops per unit of virtual time.
        assert stats["arrivals"]["offered_rate"] == pytest.approx(4.0, rel=0.15)

    def test_stats_for_closed_loop_workload(self):
        generator = WorkloadGenerator(arrivals=ClosedLoopArrivals(1.5))
        stats = workload_stats(generator.generate(["c1"], 300, seed=0))
        assert stats["arrivals"]["open_loop_fraction"] == 0.0
        assert stats["arrivals"]["offered_rate"] is None
        assert stats["arrivals"]["mean_think_time"] == pytest.approx(1.5, rel=0.15)

    def test_single_key_workloads_report_no_batching_block(self):
        generator = WorkloadGenerator(arrivals=ClosedLoopArrivals(1.0))
        stats = workload_stats(generator.generate(["c1"], 50, seed=0))
        assert "batching" not in stats

    def test_batch_remainders_group_into_logical_operations(self):
        # keys_per_op=4 expands each logical op into 4 physical ops; the
        # remainders must not be counted as zero-think closed-loop arrivals.
        generator = WorkloadGenerator(
            arrivals=ClosedLoopArrivals(2.0),
            mix=OperationMix(keys_per_op=4),
        )
        workload = generator.generate(["c1"], 200, seed=1)
        stats = workload_stats(workload)
        assert stats["operations"] == 800
        assert stats["batching"] == {
            "logical_operations": 200,
            "physical_operations": 800,
            "mean_batch_size": 4.0,
        }
        # Before the batch fix the three zero-think remainders per batch
        # dragged this towards 2.0 / 4 = 0.5.
        assert stats["arrivals"]["mean_think_time"] == pytest.approx(2.0, rel=0.15)

    def test_open_loop_batches_count_once_per_logical_operation(self):
        generator = WorkloadGenerator(
            arrivals=PoissonArrivals(rate=1.0),
            mix=OperationMix(keys_per_op=3),
        )
        workload = generator.generate(["c1", "c2"], 100, seed=2)
        stats = workload_stats(workload)
        # Every logical operation is open-loop; the remainders (issue_at is
        # None) used to deflate this to 1/3.
        assert stats["arrivals"]["open_loop_fraction"] == 1.0
        assert stats["batching"]["logical_operations"] == 200

    def test_generator_tags_batch_membership(self):
        generator = WorkloadGenerator(mix=OperationMix(keys_per_op=2))
        workload = generator.generate(["c1"], 5, seed=0)
        batches = {}
        for op in workload.operations:
            assert op.batch_id is not None
            batches.setdefault(op.batch_id, []).append(op.batch_index)
        assert len(batches) == 5
        assert all(indices == [0, 1] for indices in batches.values())

    def test_arrival_stats_are_independent_of_operation_list_order(self):
        # Regression: arrival gaps/makespan trusted the operation list order,
        # so a merged or hand-edited trace with issue_at ties (phases flipping
        # mid-batch) produced negative gaps and a wrong makespan.  Stats now
        # sort per client on the stable (issue_at, batch_id, batch_index) key.
        def op(batch_id, issue_at, batch_index=0):
            return Operation(client="c1", kind="read", value=None,
                             issue_at=issue_at, key="k1",
                             batch_id=batch_id, batch_index=batch_index)

        ordered = [op(0, 1.0), op(1, 3.0), op(2, 3.0), op(3, 8.0)]
        # The same logical workload, interleaved out of list order with an
        # issue_at tie between batches 1 and 2.
        shuffled = [ordered[3], ordered[2], ordered[0], ordered[1]]
        expected = workload_stats(Workload(operations=list(ordered)))
        scrambled = workload_stats(Workload(operations=shuffled))
        assert scrambled["arrivals"] == expected["arrivals"]
        assert scrambled["arrivals"]["mean_interarrival"] == pytest.approx(7.0 / 3)
        # Makespan (and thus offered rate) uses the true last arrival.
        assert scrambled["arrivals"]["offered_rate"] == pytest.approx(4 / 8.0)

    def test_issue_at_ties_keep_stable_batch_order(self):
        # Equal issue_at values must order by (batch_id, batch_index), so the
        # gap sequence is deterministic regardless of how ties entered the
        # list.
        def op(batch_id, issue_at):
            return Operation(client="c1", kind="read", value=None,
                             issue_at=issue_at, key="k1", batch_id=batch_id)

        tied = [op(1, 5.0), op(0, 5.0), op(2, 6.0)]
        stats = workload_stats(Workload(operations=tied))
        assert stats["arrivals"]["mean_interarrival"] == pytest.approx(0.5)
        assert stats["arrivals"]["offered_rate"] == pytest.approx(3 / 6.0)


# ---------------------------------------------------------------------------
# Trace record / replay
# ---------------------------------------------------------------------------


class TestTrace:
    def test_round_trip_is_exact(self, tmp_path):
        generator = WorkloadGenerator(
            keys=ZipfianKeys(space=8, s=1.1),
            arrivals=PoissonArrivals(rate=3.0),
            mix=OperationMix(keys_per_op=2),  # batch tags must round-trip too
        )
        workload = generator.generate(["c1", "c2"], 25, seed=3)
        path = tmp_path / "trace.jsonl"
        assert write_trace(workload, str(path)) == 100
        replayed = read_trace(str(path))
        assert replayed.operations == workload.operations

    def test_malformed_lines_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"client": "c1", "kind": "read"}\nnot json\n')
        with pytest.raises(ConfigurationError, match="malformed"):
            read_trace(str(path))

    def test_unknown_and_missing_fields_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"client": "c1", "kind": "read", "bogus": 1}\n')
        with pytest.raises(ConfigurationError, match="unknown fields"):
            read_trace(str(path))
        path.write_text('{"client": "c1"}\n')
        with pytest.raises(ConfigurationError, match="missing fields"):
            read_trace(str(path))
        path.write_text('{"client": "c1", "kind": "scan"}\n')
        with pytest.raises(ConfigurationError, match="invalid kind"):
            read_trace(str(path))
        path.write_text("\n")
        with pytest.raises(ConfigurationError, match="no operations"):
            read_trace(str(path))


# ---------------------------------------------------------------------------
# Workload index (single-pass for_client / clients)
# ---------------------------------------------------------------------------


class TestWorkloadIndex:
    def test_clients_in_first_seen_order(self):
        workload = Workload(operations=[
            Operation("c2", "write", "v1"),
            Operation("c1", "read", None),
            Operation("c2", "read", None),
        ])
        assert workload.clients() == ("c2", "c1")
        assert [op.kind for op in workload.for_client("c2")] == ["write", "read"]
        assert workload.for_client("c9") == []

    def test_index_refreshes_after_mutation(self):
        workload = Workload(operations=[Operation("c1", "read", None)])
        assert workload.clients() == ("c1",)
        workload.operations.append(Operation("c2", "write", "v"))
        assert workload.clients() == ("c1", "c2")
        assert len(workload.for_client("c2")) == 1


# ---------------------------------------------------------------------------
# Runner integration: open-loop arrivals drive a real cluster
# ---------------------------------------------------------------------------


class TestOpenLoopRunner:
    def test_open_loop_workload_completes_and_respects_schedule(self):
        config = SystemConfig.uniform(4, f=1)
        cluster = build_dynamic_cluster(config, client_count=2)
        generator = WorkloadGenerator(
            keys=UniformKeys(8),
            arrivals=PoissonArrivals(rate=0.4),
            mix=OperationMix(read_ratio=0.5),
        )
        workload = generator.generate(tuple(cluster.clients), 6, seed=2)
        report = run_workload(cluster, workload, max_time=10_000.0)
        assert report.operations == 12
        # The run cannot finish before the last scheduled arrival.
        last_arrival = max(op.issue_at for op in workload.operations)
        assert report.duration >= last_arrival
