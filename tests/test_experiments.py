"""Tests for the experiment subsystem: registry, specs, sweeps, executor, results."""

from __future__ import annotations

import json
import math

import pytest

from repro.errors import ConfigurationError
from repro.experiments import (
    ArrivalSpec,
    ClusterSpec,
    FailureSpec,
    KeySpec,
    LatencySpec,
    MixSpec,
    PhaseSpec,
    RunSpec,
    ScenarioSpec,
    Sweep,
    TransferEvent,
    WorkloadSpec,
    execute_stream,
    expand_points,
    compare_payloads,
    dumps_json,
    execute_many,
    execute_run,
    expand_grid,
    flatten_spec,
    get_scenario,
    load_payload,
    register,
    register_spec,
    run_spec,
    scenario,
    scenario_names,
    to_payload,
    unregister,
    write_csv,
    write_json,
)
from repro.experiments.registry import FunctionScenario


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_builtin_catalogue_has_headline_scenarios(self):
        names = scenario_names()
        assert len(names) >= 6
        for expected in (
            "quickstart",
            "fig1-walkthrough",
            "wmqs-vs-mqs",
            "epoch-vs-epochless",
            "storage-vs-reconfig",
            "dynamic-storage-adaptation",
        ):
            assert expected in names

    def test_decorator_registers_and_lookup_returns_entry(self):
        @scenario("test-registry-demo", description="demo", tags=("test",))
        def demo(x: int = 1):
            return {"x": x}

        try:
            entry = get_scenario("test-registry-demo")
            assert entry.name == "test-registry-demo"
            assert entry.tags == ("test",)
            assert entry.defaults == {"x": 1}
            assert entry.execute() == {"x": 1}
            assert entry.execute({"x": 5}) == {"x": 5}
        finally:
            unregister("test-registry-demo")

    def test_duplicate_registration_rejected(self):
        @scenario("test-registry-dup")
        def first():
            return {}

        try:
            with pytest.raises(ConfigurationError, match="already registered"):
                register(FunctionScenario(lambda: {}, "test-registry-dup"))
        finally:
            unregister("test-registry-dup")

    def test_unknown_scenario_lists_known_names(self):
        with pytest.raises(ConfigurationError, match="quickstart"):
            get_scenario("no-such-scenario")

    def test_function_scenario_requires_defaults(self):
        with pytest.raises(ConfigurationError, match="default"):
            FunctionScenario(lambda x: {"x": x}, "test-no-default")

    def test_unknown_parameter_rejected(self):
        entry = get_scenario("fig1-walkthrough")
        with pytest.raises(ConfigurationError, match="no parameters"):
            entry.execute({"bogus": 1})


# ---------------------------------------------------------------------------
# Declarative specs
# ---------------------------------------------------------------------------

SMALL_SPEC = ScenarioSpec(
    name="test-small",
    cluster=ClusterSpec(flavour="dynamic-weighted", n=4, f=1, client_count=1),
    workload=WorkloadSpec(
        operations_per_client=3, arrivals=ArrivalSpec(mean_think_time=0.5)
    ),
    latency=LatencySpec(kind="uniform", low=0.5, high=1.5),
)


class TestScenarioSpec:
    def test_with_overrides_replaces_nested_fields(self):
        spec = SMALL_SPEC.with_overrides(
            {"cluster.n": 6, "seed": 9, "workload.mix.read_ratio": 0.9}
        )
        assert spec.cluster.n == 6
        assert spec.seed == 9
        assert spec.workload.mix.read_ratio == 0.9
        # The original is untouched (specs are frozen).
        assert SMALL_SPEC.cluster.n == 4 and SMALL_SPEC.seed == 0

    def test_with_overrides_rejects_unknown_paths(self):
        with pytest.raises(ConfigurationError, match="unknown parameter"):
            SMALL_SPEC.with_overrides({"cluster.bogus": 1})
        with pytest.raises(ConfigurationError, match="unknown parameter"):
            SMALL_SPEC.with_overrides({"nonsense": 1})

    def test_flatten_spec_exposes_dotted_parameters(self):
        flat = flatten_spec(SMALL_SPEC)
        assert flat["cluster.n"] == 4
        assert flat["workload.operations_per_client"] == 3
        assert flat["workload.keys.zipf_s"] == 1.1
        assert flat["workload.arrivals.mean_think_time"] == 0.5
        assert flat["workload.mix.read_ratio"] == 0.5
        assert flat["latency.kind"] == "uniform"
        assert flat["seed"] == 0
        assert "name" not in flat and "description" not in flat

    def test_run_spec_produces_json_serialisable_result(self):
        result = run_spec(SMALL_SPEC)
        json.dumps(result)  # must not raise
        assert result["operations"] == 3
        assert result["flavour"] == "dynamic-weighted"
        assert result["weights"] == {"s1": 1.0, "s2": 1.0, "s3": 1.0, "s4": 1.0}

    def test_run_spec_is_deterministic(self):
        assert run_spec(SMALL_SPEC) == run_spec(SMALL_SPEC)

    def test_transfers_require_dynamic_flavour(self):
        spec = ScenarioSpec(
            name="test-bad-transfer",
            cluster=ClusterSpec(flavour="static-majority", n=4, client_count=1),
            transfers=(TransferEvent(at=1.0, source="s1", target="s2", delta=0.1),),
        )
        with pytest.raises(ConfigurationError, match="dynamic-weighted"):
            run_spec(spec)

    def test_failures_and_transfers_execute(self):
        spec = ScenarioSpec(
            name="test-crash-and-transfer",
            cluster=ClusterSpec(flavour="dynamic-weighted", n=5, f=2, client_count=1),
            workload=WorkloadSpec(
                operations_per_client=5, arrivals=ArrivalSpec(mean_think_time=2.0)
            ),
            faults=FailureSpec(crashes=(("s5", 4.0),)),
            # Stay above the RP-Integrity bound W_{S,0}/(2(n-f)) = 5/6.
            transfers=(TransferEvent(at=2.0, source="s1", target="s2", delta=0.15),),
            max_time=10_000.0,
        )
        result = run_spec(spec)
        assert result["operations"] == 5
        assert result["transfers"][0]["effective"] is True
        assert result["weights"]["s2"] == pytest.approx(1.15)

    def test_transfers_override_coerces_plain_sequences(self):
        # Overrides from the CLI/JSON arrive as lists of lists, not events.
        spec = SMALL_SPEC.with_overrides({"transfers": [[2.0, "s1", "s2", 0.2]]})
        result = run_spec(spec)
        assert result["transfers"][0]["effective"] is True
        assert result["weights"]["s2"] == pytest.approx(1.2)

    def test_malformed_transfer_override_rejected(self):
        spec = SMALL_SPEC.with_overrides({"transfers": [[2.0, "s1"]]})
        with pytest.raises(ConfigurationError, match="invalid transfer"):
            run_spec(spec)

    def test_cluster_n_must_match_explicit_weights(self):
        cluster = ClusterSpec(
            flavour="static-weighted", n=7, f=1,
            initial_weights=(("s1", 1.6), ("s2", 1.6), ("s3", 0.7), ("s4", 0.7), ("s5", 0.4)),
        )
        with pytest.raises(ConfigurationError, match="does not match"):
            cluster.system_config()

    def test_fixed_request_scenarios_validate_n(self):
        for name in ("fig1-walkthrough", "epoch-vs-epochless"):
            with pytest.raises(ConfigurationError, match="n >= 7"):
                get_scenario(name).execute({"n": 5})

    def test_unknown_latency_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="latency kind"):
            LatencySpec(kind="bogus").build()

    def test_unknown_flavour_rejected(self):
        with pytest.raises(ConfigurationError, match="flavour"):
            ClusterSpec(flavour="bogus").system_config()


# ---------------------------------------------------------------------------
# Sweep expansion
# ---------------------------------------------------------------------------


class TestSweep:
    def test_grid_expansion_is_cartesian_and_ordered(self):
        runs = expand_grid("demo", grid={"b": [1, 2], "a": ["x", "y", "z"]})
        assert len(runs) == 6
        # Axes are sorted by name; values keep their given order.
        assert runs[0].params == (("a", "x"), ("b", 1))
        assert runs[1].params == (("a", "x"), ("b", 2))
        assert runs[-1].params == (("a", "z"), ("b", 2))
        assert len({run.run_id for run in runs}) == 6

    def test_seed_lists_are_an_axis(self):
        runs = expand_grid("demo", grid={"cluster.n": [4, 5], "seed": [0, 1, 2]})
        assert len(runs) == 6
        seeds = [run.params_dict["seed"] for run in runs]
        assert seeds == [0, 1, 2, 0, 1, 2]

    def test_base_params_are_fixed_across_runs(self):
        runs = expand_grid("demo", grid={"seed": [0, 1]}, base={"cluster.n": 7})
        assert all(run.params_dict["cluster.n"] == 7 for run in runs)

    def test_grid_axis_overrides_base(self):
        runs = expand_grid("demo", grid={"seed": [3]}, base={"seed": 0})
        assert runs == [RunSpec("demo", (("seed", 3),))]

    def test_empty_grid_yields_single_run(self):
        assert expand_grid("demo") == [RunSpec("demo", ())]

    def test_invalid_axes_rejected(self):
        with pytest.raises(ConfigurationError, match="no values"):
            expand_grid("demo", grid={"seed": []})
        with pytest.raises(ConfigurationError, match="list/tuple"):
            expand_grid("demo", grid={"seed": "012"})


# ---------------------------------------------------------------------------
# Executor: serial / parallel equivalence
# ---------------------------------------------------------------------------


class TestExecutor:
    def test_execute_run_resolves_registry(self):
        result = execute_run(RunSpec("fig1-walkthrough"))
        assert result.run_id == "fig1-walkthrough"
        assert [row["effective"] for row in result.result["transfers"]] == [
            True, True, True, False, False,
        ]

    def test_parallel_equals_serial(self):
        runs = expand_grid(
            "quickstart",
            grid={"seed": [0, 1, 2]},
            base={"workload.operations_per_client": 3},
        )
        serial = execute_many(runs, workers=1)
        parallel = execute_many(runs, workers=3)
        assert dumps_json(serial) == dumps_json(parallel)

    def test_results_preserve_input_order(self):
        runs = expand_grid("quickstart", grid={"seed": [5, 1, 3]},
                           base={"workload.operations_per_client": 2})
        results = execute_many(runs, workers=2)
        assert [r.params for r in results] == [run.params for run in runs]

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ConfigurationError, match="workers"):
            execute_many([], workers=0)


# ---------------------------------------------------------------------------
# Result sinks and comparison
# ---------------------------------------------------------------------------


class TestResults:
    def _small_results(self):
        runs = expand_grid("quickstart", grid={"seed": [0, 1]},
                           base={"workload.operations_per_client": 2})
        return execute_many(runs)

    def test_json_round_trip(self, tmp_path):
        results = self._small_results()
        path = tmp_path / "results.json"
        write_json(results, str(path))
        payload = load_payload(str(path))
        assert payload == to_payload(results)
        assert compare_payloads(payload, to_payload(results)) == []

    def test_csv_sink_writes_flattened_columns(self, tmp_path):
        results = self._small_results()
        path = tmp_path / "results.csv"
        write_csv(results, str(path))
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 3  # header + 2 runs
        header = lines[0].split(",")
        assert "run_id" in header
        assert "param.seed" in header
        assert "result.duration" in header

    def test_compare_detects_field_and_run_diffs(self):
        results = self._small_results()
        current = to_payload(results)
        baseline = json.loads(json.dumps(current))
        baseline[0]["result"]["operations"] += 1
        del baseline[1]
        diffs = compare_payloads(current, baseline)
        kinds = {diff["kind"] for diff in diffs}
        assert kinds == {"field", "extra-run"}
        field_diff = next(diff for diff in diffs if diff["kind"] == "field")
        assert field_diff["field"] == "result.operations"

    def test_compare_respects_relative_tolerance(self):
        current = [{"run_id": "r", "scenario": "s", "params": {}, "result": {"x": 1.0}}]
        baseline = [{"run_id": "r", "scenario": "s", "params": {}, "result": {"x": 1.0 + 1e-12}}]
        assert compare_payloads(current, baseline) == []
        assert compare_payloads(current, baseline, rel_tol=1e-15, abs_tol=0.0) != []

    def test_compare_treats_nan_as_equal(self):
        payload = [{"run_id": "r", "scenario": "s", "params": {},
                    "result": {"x": math.nan}}]
        assert compare_payloads(payload, json.loads(json.dumps(payload))) == []


# ---------------------------------------------------------------------------
# Spec-backed registration helper
# ---------------------------------------------------------------------------


class TestRegisterSpec:
    def test_register_spec_round_trip(self):
        register_spec(SMALL_SPEC, tags=("test",))
        try:
            entry = get_scenario("test-small")
            assert entry.kind == "spec"
            assert entry.defaults["cluster.n"] == 4
            result = entry.execute({"cluster.n": 5, "cluster.f": 2})
            assert len(result["weights"]) == 5
        finally:
            unregister("test-small")


# ---------------------------------------------------------------------------
# Sweep sampling and explicit points
# ---------------------------------------------------------------------------


class TestSweepSampling:
    GRID = {"cluster.n": [4, 5, 6], "seed": [0, 1, 2, 3]}

    def test_sample_is_deterministic_and_distinct(self):
        sweep = Sweep.of("demo", grid=self.GRID)
        assert sweep.size == 12
        first = sweep.sample(5, seed=7)
        second = sweep.sample(5, seed=7)
        assert first == second
        assert len(set(first)) == 5

    def test_sample_is_a_subset_of_the_grid_in_grid_order(self):
        sweep = Sweep.of("demo", grid=self.GRID)
        full = sweep.runs()
        sampled = sweep.sample(4, seed=1)
        positions = [full.index(run) for run in sampled]
        assert positions == sorted(positions)

    def test_different_seeds_sample_differently(self):
        sweep = Sweep.of("demo", grid=self.GRID)
        assert sweep.sample(5, seed=0) != sweep.sample(5, seed=1)

    def test_oversampling_degenerates_to_the_full_grid(self):
        sweep = Sweep.of("demo", grid=self.GRID)
        assert sweep.sample(100, seed=0) == sweep.runs()

    def test_sample_keeps_base_params(self):
        sweep = Sweep.of("demo", grid={"seed": [0, 1, 2]}, base={"cluster.n": 7})
        for run in sweep.sample(2, seed=0):
            assert run.params_dict["cluster.n"] == 7

    def test_invalid_sample_size_rejected(self):
        with pytest.raises(ConfigurationError, match="sample size"):
            Sweep.of("demo", grid=self.GRID).sample(0)

    def test_expand_points_layers_over_base(self):
        runs = expand_points(
            "demo",
            points=[{"cluster.n": 5}, {"cluster.n": 7, "seed": 3}],
            base={"seed": 0},
        )
        assert runs[0].params_dict == {"cluster.n": 5, "seed": 0}
        assert runs[1].params_dict == {"cluster.n": 7, "seed": 3}

    def test_expand_points_rejects_bad_input(self):
        with pytest.raises(ConfigurationError, match="at least one point"):
            expand_points("demo", points=[])
        with pytest.raises(ConfigurationError, match="mapping"):
            expand_points("demo", points=["cluster.n=5"])


class TestLatinHypercubeSampling:
    GRID = {"cluster.n": [3, 4, 5, 6, 7, 8, 9, 10], "seed": [0, 1, 2, 3, 4, 5, 6, 7]}

    def test_lhs_marginals_cover_every_axis_value(self):
        # With n == len(values) per axis, LHS strata are a permutation, so
        # every axis value appears exactly once — the stratification uniform
        # sampling only achieves in expectation.
        sweep = Sweep.of("demo", grid=self.GRID)
        runs = sweep.sample(8, seed=0, method="lhs")
        assert len(runs) == 8
        for axis, values in self.GRID.items():
            marginal = sorted(run.params_dict[axis] for run in runs)
            assert marginal == sorted(values)

    def test_lhs_stratifies_where_uniform_does_not(self):
        # Seed 0 makes the comparison concrete: the uniform draw of 8 points
        # from the 64-point grid misses several axis values; LHS misses none.
        sweep = Sweep.of("demo", grid=self.GRID)
        uniform = sweep.sample(8, seed=0, method="uniform")
        uniform_ns = {run.params_dict["cluster.n"] for run in uniform}
        assert len(uniform_ns) < len(self.GRID["cluster.n"])
        lhs_ns = {run.params_dict["cluster.n"]
                  for run in sweep.sample(8, seed=0, method="lhs")}
        assert lhs_ns == set(self.GRID["cluster.n"])

    def test_lhs_is_seeded_and_deterministic(self):
        sweep = Sweep.of("demo", grid=self.GRID)
        assert sweep.sample(6, seed=7, method="lhs") == sweep.sample(
            6, seed=7, method="lhs"
        )
        assert sweep.sample(6, seed=7, method="lhs") != sweep.sample(
            6, seed=8, method="lhs"
        )

    def test_lhs_points_are_grid_points_in_grid_order(self):
        sweep = Sweep.of("demo", grid=self.GRID)
        full = sweep.runs()
        sampled = sweep.sample(5, seed=3, method="lhs")
        positions = [full.index(run) for run in sampled]
        assert positions == sorted(positions)

    def test_lhs_keeps_base_params_and_degenerates_to_full_grid(self):
        sweep = Sweep.of("demo", grid={"seed": [0, 1, 2]}, base={"cluster.n": 7})
        for run in sweep.sample(2, seed=0, method="lhs"):
            assert run.params_dict["cluster.n"] == 7
        assert sweep.sample(100, seed=0, method="lhs") == sweep.runs()

    def test_lhs_covers_short_axes_fully_when_n_exceeds_them(self):
        # An axis shorter than n still has every value appear (repeatedly).
        sweep = Sweep.of("demo", grid={"cluster.n": [4, 5],
                                       "seed": [0, 1, 2, 3, 4, 5]})
        runs = sweep.sample(6, seed=1, method="lhs")
        assert {run.params_dict["cluster.n"] for run in runs} == {4, 5}

    def test_unknown_method_rejected(self):
        with pytest.raises(ConfigurationError, match="sample method"):
            Sweep.of("demo", grid=self.GRID).sample(4, method="sobol")

    def test_invalid_lhs_sample_size_rejected(self):
        with pytest.raises(ConfigurationError, match="sample size"):
            Sweep.of("demo", grid=self.GRID).sample_lhs(0)


# ---------------------------------------------------------------------------
# Streaming executor
# ---------------------------------------------------------------------------


class TestExecuteStream:
    def _runs(self):
        return expand_grid("quickstart", grid={"seed": [0, 1, 2]},
                           base={"workload.operations_per_client": 2})

    def test_stream_yields_every_index_once_with_progress(self):
        runs = self._runs()
        seen = []
        pairs = list(execute_stream(runs, workers=1,
                                    progress=lambda done, total: seen.append((done, total))))
        assert sorted(index for index, _ in pairs) == [0, 1, 2]
        assert seen == [(1, 3), (2, 3), (3, 3)]

    def test_parallel_stream_matches_serial_results(self):
        runs = self._runs()
        serial = {index: result for index, result in execute_stream(runs, workers=1)}
        parallel = {index: result for index, result in execute_stream(runs, workers=3)}
        assert serial == parallel

    def test_execute_many_progress_callback(self):
        seen = []
        execute_many(self._runs(), workers=1,
                     progress=lambda done, total: seen.append(done))
        assert seen == [1, 2, 3]

    def test_stream_invalid_worker_count_rejected(self):
        with pytest.raises(ConfigurationError, match="workers"):
            list(execute_stream([], workers=0))


# ---------------------------------------------------------------------------
# Composable workload specs inside scenarios
# ---------------------------------------------------------------------------


class TestWorkloadSpecIntegration:
    def test_zipf_override_path_changes_the_workload(self):
        spec = SMALL_SPEC.with_overrides(
            {"workload.keys.kind": "zipfian", "workload.keys.zipf_s": 2.0}
        )
        assert spec.workload.keys.kind == "zipfian"
        assert spec.workload.keys.zipf_s == 2.0
        result = run_spec(spec)
        assert result["operations"] == 3
        assert result["workload"]["keys"]["distinct"] >= 1

    def test_open_loop_spec_runs(self):
        spec = SMALL_SPEC.with_overrides(
            {"workload.arrivals.kind": "poisson", "workload.arrivals.rate": 2.0,
             "max_time": 10_000.0}
        )
        result = run_spec(spec)
        assert result["workload"]["arrivals"]["open_loop_fraction"] == 1.0

    def test_phase_override_round_trips_through_cli_shapes(self):
        # Phases arriving from JSON/CLI are plain nested lists.
        spec = SMALL_SPEC.with_overrides(
            {"workload.phases": [[1.0, [["mix.read_ratio", 1.0]]]]}
        )
        result = run_spec(spec)
        assert result["operations"] == 3

    def test_phase_override_must_target_an_axis(self):
        spec = SMALL_SPEC.with_overrides(
            {"workload.phases": [[1.0, [["operations_per_client", 99]]]]}
        )
        with pytest.raises(ConfigurationError, match="axes"):
            run_spec(spec)

    def test_phase_override_must_target_a_field_inside_an_axis(self):
        # A bare axis name would replace the whole sub-spec with a raw value.
        spec = SMALL_SPEC.with_overrides({"workload.phases": [[1.0, [["keys", 5]]]]})
        with pytest.raises(ConfigurationError, match="field inside"):
            run_spec(spec)

    def test_malformed_phase_rejected(self):
        spec = SMALL_SPEC.with_overrides({"workload.phases": [[1.0]]})
        with pytest.raises(ConfigurationError, match="invalid phase"):
            run_spec(spec)

    def test_unknown_kinds_rejected(self):
        with pytest.raises(ConfigurationError, match="key distribution"):
            KeySpec(kind="bogus").build()
        with pytest.raises(ConfigurationError, match="arrival kind"):
            ArrivalSpec(kind="bogus").build()

    def test_trace_replay_spec(self, tmp_path):
        from repro.workloads import write_trace
        workload = SMALL_SPEC.workload.build(("c1",), seed=0)
        path = tmp_path / "trace.jsonl"
        write_trace(workload, str(path))
        spec = SMALL_SPEC.with_overrides({"workload.trace": str(path)})
        assert run_spec(spec) == run_spec(spec)
        assert run_spec(spec)["operations"] == 3

    def test_result_carries_workload_stats(self):
        result = run_spec(SMALL_SPEC)
        assert result["workload"]["operations"] == 3
        assert 0.0 <= result["workload"]["read_fraction"] <= 1.0

    def test_workload_scenarios_registered(self):
        names = scenario_names()
        for expected in ("skewed-reassignment", "open-loop-saturation",
                         "hotspot-shift", "hotspot-shift-monitoring"):
            assert expected in names

    def test_skewed_sweep_serial_equals_parallel(self):
        runs = expand_grid(
            "skewed-reassignment",
            grid={"workload.keys.zipf_s": [0.8, 1.4]},
            base={"workload.operations_per_client": 3},
        )
        serial = execute_many(runs, workers=1)
        parallel = execute_many(runs, workers=2)
        assert dumps_json(serial) == dumps_json(parallel)


class TestWarmPool:
    """The executor keeps one worker pool alive across chained sweeps."""

    def test_pool_is_reused_across_calls(self):
        import repro.experiments.executor as executor_module
        from repro.experiments.executor import shutdown_pool

        runs = expand_grid(
            "quickstart",
            grid={"seed": [0, 1]},
            base={"workload.operations_per_client": 2},
        )
        try:
            first = execute_many(runs, workers=2)
            pool_after_first = executor_module._warm_pool
            second = execute_many(runs, workers=2)
            pool_after_second = executor_module._warm_pool
            assert pool_after_first is not None
            assert pool_after_first is pool_after_second
            assert dumps_json(first) == dumps_json(second)
        finally:
            shutdown_pool()
            assert executor_module._warm_pool is None

    def test_pool_invalidated_by_worker_count_and_registry_changes(self):
        import repro.experiments.executor as executor_module
        from repro.experiments.executor import shutdown_pool
        from repro.experiments.registry import register, unregister

        runs = expand_grid(
            "quickstart",
            grid={"seed": [0, 1, 2]},
            base={"workload.operations_per_client": 2},
        )
        try:
            execute_many(runs, workers=2)
            pool_two = executor_module._warm_pool
            execute_many(runs, workers=3)
            pool_three = executor_module._warm_pool
            assert pool_two is not pool_three

            # A registry change must re-fork, so workers see the new entry.
            entry = FunctionScenario(lambda: {"ok": 1}, name="warm-pool-probe")
            register(entry)
            try:
                execute_many(runs, workers=3)
                assert executor_module._warm_pool is not pool_three
            finally:
                unregister("warm-pool-probe")
        finally:
            shutdown_pool()

    def test_serial_execution_never_forks_a_pool(self):
        import repro.experiments.executor as executor_module
        from repro.experiments.executor import shutdown_pool

        shutdown_pool()
        runs = expand_grid(
            "quickstart",
            grid={"seed": [0]},
            base={"workload.operations_per_client": 2},
        )
        execute_many(runs, workers=1)
        assert executor_module._warm_pool is None

    def test_interleaved_streams_with_different_shapes_both_complete(self):
        # A stream must never have its pool torn down by a concurrently
        # started stream with a different worker count (or registry
        # version): the second stream gets a private pool instead.
        import repro.experiments.executor as executor_module
        from repro.experiments.executor import execute_stream, shutdown_pool
        from repro.experiments.sweep import expand_grid as grid

        runs = grid(
            "quickstart",
            grid={"seed": [0, 1]},
            base={"workload.operations_per_client": 2},
        )
        try:
            first = execute_stream(runs, workers=2)
            head_index, _ = next(first)  # first stream is now mid-consumption
            second = execute_stream(runs, workers=3)
            second_results = sorted(index for index, _ in second)
            first_results = sorted(
                [head_index] + [index for index, _ in first]
            )
            assert second_results == [0, 1]
            assert first_results == [0, 1]
            assert executor_module._warm_pool is not None
        finally:
            shutdown_pool()

    def test_abandoned_stream_cancels_queued_runs(self):
        # Closing a stream mid-consumption must tear the warm pool down (no
        # orphaned runs burning CPU), matching the old per-call semantics.
        import repro.experiments.executor as executor_module
        from repro.experiments.executor import execute_stream, shutdown_pool
        from repro.experiments.sweep import expand_grid as grid

        runs = grid(
            "quickstart",
            grid={"seed": [0, 1, 2, 3]},
            base={"workload.operations_per_client": 2},
        )
        try:
            stream = execute_stream(runs, workers=2)
            next(stream)
            stream.close()  # abandoned: generator finally must release
            assert executor_module._warm_pool is None
        finally:
            shutdown_pool()
