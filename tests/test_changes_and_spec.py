"""Tests for the change data structures and the executable specifications."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.change import Change, ChangeSet, initial_changes
from repro.core.spec import (
    SystemConfig,
    check_integrity,
    check_rp_integrity,
    check_rp_validity_one,
    check_validity_one,
    rp_minimum_weight,
    weights_from_changes,
)
from repro.errors import ConfigurationError, IntegrityViolation
from repro.types import server_set


class TestChange:
    def test_null_change(self):
        assert Change("s1", 2, "s1", 0.0).is_null()
        assert not Change("s1", 2, "s1", 0.5).is_null()

    def test_initial_change_detection(self):
        assert Change("s1", 1, "s1", 1.0).is_initial()
        assert not Change("s1", 2, "s1", 1.0).is_initial()
        assert not Change("s2", 1, "s1", 1.0).is_initial()

    def test_changes_are_hashable_and_comparable(self):
        a = Change("s1", 2, "s2", 0.5)
        b = Change("s1", 2, "s2", 0.5)
        assert a == b
        assert len({a, b}) == 1


class TestChangeSet:
    def test_initial_changes_carry_weights(self):
        changes = initial_changes({"s1": 1.5, "s2": 0.5})
        assert changes.weight_of("s1") == 1.5
        assert changes.weight_of("s2") == 0.5
        assert changes.total_weight() == 2.0

    def test_union_is_grow_only_and_idempotent(self):
        base = initial_changes({"s1": 1.0})
        extra = base.add(Change("s1", 2, "s1", 0.5))
        assert base.issubset(extra)
        assert extra.union(extra) == extra
        assert len(base) == 1  # the original set is untouched

    def test_weight_sums_all_deltas_for_server(self):
        changes = ChangeSet(
            [
                Change("s1", 1, "s1", 1.0),
                Change("s2", 2, "s1", 0.25),
                Change("s1", 2, "s1", -0.5),
            ]
        )
        assert changes.weight_of("s1") == pytest.approx(0.75)

    def test_for_server_filters(self):
        changes = ChangeSet(
            [Change("s1", 1, "s1", 1.0), Change("s2", 1, "s2", 1.0)]
        )
        assert len(changes.for_server("s1")) == 1

    def test_by_author_and_max_counter(self):
        changes = ChangeSet(
            [
                Change("s1", 1, "s1", 1.0),
                Change("s1", 2, "s2", 0.5),
                Change("s2", 7, "s2", 1.0),
            ]
        )
        assert len(changes.by_author("s1")) == 2
        assert changes.max_counter("s1") == 2
        assert changes.max_counter("s2") == 7
        assert changes.max_counter("s9") == 0

    def test_non_null_filter(self):
        changes = ChangeSet(
            [Change("s1", 2, "s1", 0.0), Change("s1", 3, "s1", 0.5)]
        )
        assert len(changes.non_null()) == 1

    def test_difference(self):
        small = ChangeSet([Change("s1", 1, "s1", 1.0)])
        big = small.add(Change("s2", 1, "s2", 1.0))
        assert big.difference(small) == frozenset({Change("s2", 1, "s2", 1.0)})

    def test_weights_over_explicit_server_list(self):
        changes = initial_changes({"s1": 1.0})
        weights = changes.weights(["s1", "s2"])
        assert weights == {"s1": 1.0, "s2": 0.0}

    def test_sorted_is_deterministic(self):
        changes = ChangeSet(
            [Change("s2", 1, "s2", 1.0), Change("s1", 1, "s1", 1.0)]
        )
        assert changes.sorted() == tuple(sorted(changes))

    @settings(max_examples=60, deadline=None)
    @given(
        deltas=st.lists(
            st.floats(min_value=-2.0, max_value=2.0, allow_nan=False), min_size=1, max_size=12
        )
    )
    def test_weight_is_sum_of_deltas(self, deltas):
        changes = ChangeSet(
            Change("author", i + 2, "s1", d) for i, d in enumerate(deltas)
        )
        assert changes.weight_of("s1") == pytest.approx(sum(deltas))

    @settings(max_examples=40, deadline=None)
    @given(
        first=st.sets(st.integers(min_value=0, max_value=30), max_size=10),
        second=st.sets(st.integers(min_value=0, max_value=30), max_size=10),
    )
    def test_union_commutative_and_supersets(self, first, second):
        a = ChangeSet(Change("s1", i + 2, "s1", 0.1) for i in first)
        b = ChangeSet(Change("s1", i + 2, "s1", 0.1) for i in second)
        assert a.union(b) == b.union(a)
        assert a.issubset(a.union(b))
        assert b.issubset(a.union(b))


class TestIntegrityCheckers:
    def test_integrity_equivalent_to_property_one(self):
        weights = {"s1": 1.0, "s2": 1.0, "s3": 1.0, "s4": 1.0, "s5": 1.0}
        assert check_integrity(weights, 2)
        assert not check_integrity(weights, 3)

    def test_integrity_fails_when_f_heaviest_reach_half(self):
        weights = {"s1": 2.5, "s2": 0.5, "s3": 1.0, "s4": 1.0}
        assert not check_integrity(weights, 1)

    def test_rp_minimum_weight_formula(self):
        assert rp_minimum_weight(7.0, 7, 2) == pytest.approx(0.7)
        assert rp_minimum_weight(5.0, 5, 1) == pytest.approx(0.625)

    def test_rp_minimum_requires_n_greater_than_f(self):
        with pytest.raises(ConfigurationError):
            rp_minimum_weight(5.0, 3, 3)

    def test_rp_integrity_checker(self):
        weights = {"s1": 1.2, "s2": 1.2, "s3": 1.2, "s4": 0.8, "s5": 0.8, "s6": 0.8, "s7": 1.0}
        assert check_rp_integrity(weights, total_initial_weight=7.0, f=2)
        weights["s4"] = 0.7  # exactly the bound: strictly-greater fails
        assert not check_rp_integrity(weights, total_initial_weight=7.0, f=2)

    def test_rp_integrity_implies_integrity(self):
        """Lemma 1: per-server floors imply Property 1 for the same f."""
        weights = {"s1": 2.0, "s2": 1.5, "s3": 1.2, "s4": 0.8, "s5": 0.75, "s6": 0.75}
        total0 = sum(weights.values())
        if check_rp_integrity(weights, total0, f=2):
            assert check_integrity(weights, 2)


class TestValidityCheckers:
    def test_validity_one_effective(self):
        assert check_validity_one(0.5, 0.5, integrity_would_hold=True)
        assert not check_validity_one(0.5, 0.0, integrity_would_hold=True)

    def test_validity_one_aborted(self):
        assert check_validity_one(0.5, 0.0, integrity_would_hold=False)
        assert not check_validity_one(0.5, 0.5, integrity_would_hold=False)

    def test_validity_one_rejects_zero_request(self):
        assert not check_validity_one(0.0, 0.0, integrity_would_hold=True)

    def test_rp_validity_requires_c1(self):
        assert not check_rp_validity_one(
            source="s1", author="s2", requested_delta=0.5,
            created_source_delta=-0.5, created_target_delta=0.5,
            rp_integrity_would_hold=True,
        )

    def test_rp_validity_effective_shape(self):
        assert check_rp_validity_one(
            source="s1", author="s1", requested_delta=0.5,
            created_source_delta=-0.5, created_target_delta=0.5,
            rp_integrity_would_hold=True,
        )

    def test_rp_validity_null_shape(self):
        assert check_rp_validity_one(
            source="s1", author="s1", requested_delta=0.5,
            created_source_delta=0.0, created_target_delta=0.0,
            rp_integrity_would_hold=False,
        )


class TestSystemConfig:
    def test_uniform_defaults(self):
        config = SystemConfig.uniform(7)
        assert config.n == 7
        assert config.f == 3
        assert config.total_initial_weight == pytest.approx(7.0)

    def test_explicit_f(self):
        config = SystemConfig.uniform(7, f=2)
        assert config.f == 2
        assert config.rp_min_weight == pytest.approx(0.7)

    def test_initial_change_set_matches_weights(self):
        config = SystemConfig.uniform(3, f=1)
        changes = config.initial_change_set()
        assert weights_from_changes(changes, config.servers) == config.initial_weights

    def test_invalid_f_rejected(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(servers=server_set(3), f=3)
        with pytest.raises(ConfigurationError):
            SystemConfig(servers=server_set(3), f=-1)

    def test_duplicate_servers_rejected(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(servers=("s1", "s1"), f=0)

    def test_initial_weights_must_cover_server_set(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(servers=server_set(3), f=1, initial_weights={"s1": 1.0})

    def test_unavailable_initial_weights_rejected(self):
        with pytest.raises(IntegrityViolation):
            SystemConfig(
                servers=server_set(3),
                f=1,
                initial_weights={"s1": 5.0, "s2": 1.0, "s3": 1.0},
            )

    def test_validate_rp_initial_weights(self):
        config = SystemConfig(
            servers=server_set(4),
            f=1,
            initial_weights={"s1": 1.3, "s2": 1.3, "s3": 0.7, "s4": 0.7},
        )
        config.validate_rp_initial_weights()  # 4/(2*3) = 0.666.. < 0.7: fine
        tight = SystemConfig(
            servers=server_set(4),
            f=1,
            initial_weights={"s1": 1.4, "s2": 1.3, "s3": 0.65, "s4": 0.65},
        )
        with pytest.raises(IntegrityViolation):
            tight.validate_rp_initial_weights()

    def test_paper_example1_weights(self):
        """Example 1's setting is a legal configuration."""
        config = SystemConfig.uniform(4, f=1)
        assert config.rp_min_weight == pytest.approx(4.0 / 6.0)
