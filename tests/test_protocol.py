"""Tests for Algorithms 3 and 4: restricted pairwise weight reassignment."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.change import Change
from repro.core.protocol import ReassignmentServer, read_changes
from repro.core.spec import SystemConfig, check_integrity, check_rp_integrity
from repro.errors import ConfigurationError, SimulationError
from repro.net.latency import ConstantLatency, UniformLatency
from repro.net.network import Network
from repro.net.process import Process
from repro.net.simloop import SimLoop, gather

from tests.conftest import make_net


def build_protocol_cluster(n, f, latency=None, weights=None):
    loop = SimLoop()
    network = Network(loop, latency or ConstantLatency(1.0))
    config = (
        SystemConfig.uniform(n, f=f)
        if weights is None
        else SystemConfig(servers=tuple(sorted(weights, key=lambda s: int(s[1:]))), f=f, initial_weights=weights)
    )
    servers = {pid: ReassignmentServer(pid, network, config) for pid in config.servers}
    return loop, network, config, servers


class TestTransferBasics:
    def test_effective_transfer_moves_weight(self):
        loop, _, config, servers = build_protocol_cluster(5, 1)

        async def go():
            return await servers["s1"].transfer("s2", 0.25)

        outcome = loop.run_until_complete(go())
        assert outcome.effective
        assert servers["s1"].weight() == pytest.approx(0.75)
        loop.run()
        assert servers["s3"].weight_of("s2") == pytest.approx(1.25)

    def test_null_transfer_when_c2_fails(self):
        loop, _, config, servers = build_protocol_cluster(5, 2)
        # rp bound = 5/(2*3) = 0.8333..; giving 0.25 away would land below it.

        async def go():
            return await servers["s1"].transfer("s2", 0.25)

        outcome = loop.run_until_complete(go())
        assert not outcome.effective
        assert outcome.change.is_null()
        assert servers["s1"].weight() == pytest.approx(1.0)

    def test_null_transfer_does_not_broadcast(self):
        loop, network, config, servers = build_protocol_cluster(5, 2)

        async def go():
            return await servers["s1"].transfer("s2", 0.25)

        loop.run_until_complete(go())
        loop.run()
        assert network.sent_by_kind["T_RB"] == 0

    def test_boundary_transfer_is_rejected(self):
        """Giving away exactly down to the bound violates the strict inequality."""
        loop, _, config, servers = build_protocol_cluster(7, 2)
        # bound = 0.7; transferring 0.3 leaves exactly 0.7 -> must be null.

        async def go():
            return await servers["s7"].transfer("s3", 0.3)

        assert not loop.run_until_complete(go()).effective

    def test_local_counter_increments_even_for_null_transfers(self):
        loop, _, config, servers = build_protocol_cluster(5, 2)

        async def go():
            await servers["s1"].transfer("s2", 0.25)   # null
            await servers["s1"].transfer("s2", 0.01)   # effective
            return servers["s1"].lc

        assert loop.run_until_complete(go()) == 4  # started at 2, two invocations

    def test_counters_distinguish_transfers(self):
        loop, _, config, servers = build_protocol_cluster(5, 1)

        async def go():
            first = await servers["s1"].transfer("s2", 0.1)
            second = await servers["s1"].transfer("s3", 0.1)
            return first, second

        first, second = loop.run_until_complete(go())
        assert first.change.counter == 2
        assert second.change.counter == 3

    def test_transfer_log_records_outcomes(self):
        loop, _, config, servers = build_protocol_cluster(5, 1)

        async def go():
            await servers["s1"].transfer("s2", 0.1)
            await servers["s1"].transfer("s2", 5.0)  # far too much: null
            return servers["s1"].transfer_log

        log = loop.run_until_complete(go())
        assert [entry.effective for entry in log] == [True, False]

    def test_invalid_invocations_rejected(self):
        loop, _, config, servers = build_protocol_cluster(5, 1)

        async def zero():
            await servers["s1"].transfer("s2", 0.0)

        async def negative():
            await servers["s1"].transfer("s2", -0.5)

        async def to_self():
            await servers["s1"].transfer("s1", 0.1)

        async def unknown():
            await servers["s1"].transfer("s99", 0.1)

        for bad in (zero, negative, to_self, unknown):
            with pytest.raises(ConfigurationError):
                loop.run_until_complete(bad())

    def test_concurrent_invocations_by_same_server_rejected(self):
        """Processes are sequential (Section II)."""
        loop, _, config, servers = build_protocol_cluster(5, 1)

        async def go():
            first = loop.create_task(servers["s1"].transfer("s2", 0.1))
            await loop.sleep(0.1)
            with pytest.raises(SimulationError):
                await servers["s1"].transfer("s3", 0.1)
            await first

        loop.run_until_complete(go())

    def test_server_outside_config_rejected(self):
        loop, network, config, servers = build_protocol_cluster(3, 1)
        with pytest.raises(ConfigurationError):
            ReassignmentServer("s9", network, config)


class TestTransferFaultTolerance:
    def test_transfer_completes_with_f_servers_crashed(self):
        loop, network, config, servers = build_protocol_cluster(7, 2)
        network.crash("s6")
        network.crash("s7")

        async def go():
            return await servers["s1"].transfer("s2", 0.2)

        outcome = loop.run_until_complete(go())
        assert outcome.effective
        # All surviving servers eventually learn the change.
        loop.run()
        for pid in ("s1", "s2", "s3", "s4", "s5"):
            assert servers[pid].weight_of("s2") == pytest.approx(1.2)

    def test_transfer_blocks_with_more_than_f_crashes(self):
        """With f+1 crashes the n-f-1 acknowledgements never arrive.

        In the deterministic simulation this surfaces as a deadlock (the event
        heap drains while the transfer is still waiting for acknowledgements).
        """
        from repro.errors import DeadlockError

        loop, network, config, servers = build_protocol_cluster(5, 1)
        network.crash("s4")
        network.crash("s5")

        async def go():
            return await servers["s1"].transfer("s2", 0.2)

        with pytest.raises(DeadlockError):
            loop.run_until_complete(go(), max_time=500.0)

    def test_concurrent_transfers_by_different_servers(self):
        loop, _, config, servers = build_protocol_cluster(7, 2)

        async def one(source, target, delta):
            return await servers[source].transfer(target, delta)

        outcomes = loop.run_until_complete(
            gather(
                loop,
                [one("s4", "s1", 0.2), one("s5", "s2", 0.2), one("s6", "s3", 0.2)],
            )
        )
        assert all(outcome.effective for outcome in outcomes)
        loop.run()
        weights = servers["s1"].local_weights()
        assert weights["s1"] == pytest.approx(1.2)
        assert weights["s4"] == pytest.approx(0.8)
        assert sum(weights.values()) == pytest.approx(7.0)


class TestRPIntegrityInvariant:
    def test_fig1_scenario_preserves_rp_integrity(self):
        loop, _, config, servers = build_protocol_cluster(7, 2)

        async def go():
            results = []
            results.append(await servers["s4"].transfer("s1", 0.2))
            results.append(await servers["s5"].transfer("s2", 0.2))
            results.append(await servers["s6"].transfer("s3", 0.2))
            # The red-box transfers of Fig. 1: both must be rejected.
            results.append(await servers["s6"].transfer("s2", 0.2))
            results.append(await servers["s7"].transfer("s3", 0.3))
            return results

        results = loop.run_until_complete(go())
        assert [r.effective for r in results] == [True, True, True, False, False]
        loop.run()
        for server in servers.values():
            weights = server.local_weights()
            assert check_rp_integrity(weights, config.total_initial_weight, config.f)
            assert check_integrity(weights, config.f)

    @settings(max_examples=25, deadline=None)
    @given(
        requests=st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=5),
                st.integers(min_value=1, max_value=5),
                st.floats(min_value=0.01, max_value=0.6, allow_nan=False),
            ),
            min_size=1,
            max_size=8,
        ),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_random_transfer_sequences_never_violate_safety(self, requests, seed):
        """RP-Integrity, Integrity and total-weight conservation hold for any
        sequence of transfer requests, whatever their outcome."""
        loop, _, config, servers = build_protocol_cluster(
            5, 1, latency=UniformLatency(0.5, 1.5, seed=seed)
        )

        async def go():
            for source_index, target_index, delta in requests:
                source = f"s{source_index}"
                target = f"s{target_index}"
                if source == target:
                    continue
                await servers[source].transfer(target, round(delta, 3))

        loop.run_until_complete(go())
        loop.run()
        for server in servers.values():
            weights = server.local_weights()
            assert check_rp_integrity(weights, config.total_initial_weight, config.f)
            assert check_integrity(weights, config.f)
            assert sum(weights.values()) == pytest.approx(config.total_initial_weight)


class TestReadChanges:
    def test_client_sees_completed_changes(self):
        loop, network, config, servers = build_protocol_cluster(5, 1)
        client = Process("c1", network)

        async def go():
            await servers["s1"].transfer("s2", 0.25)
            return await read_changes(client, "s2", config)

        changes = loop.run_until_complete(go())
        assert changes.weight_of("s2") == pytest.approx(1.25)

    def test_unknown_server_rejected(self):
        loop, network, config, servers = build_protocol_cluster(3, 1)
        client = Process("c1", network)

        async def go():
            await read_changes(client, "s9", config)

        with pytest.raises(ConfigurationError):
            loop.run_until_complete(go())

    def test_read_changes_works_with_f_crashes(self):
        loop, network, config, servers = build_protocol_cluster(5, 2)
        network.crash("s4")
        network.crash("s5")
        client = Process("c1", network)

        async def go():
            return await read_changes(client, "s1", config)

        changes = loop.run_until_complete(go())
        assert changes.weight_of("s1") == pytest.approx(1.0)

    def test_validity_two_monotonic_reads(self):
        """RP-Validity-II: once a change is returned, later reads contain it."""
        loop, network, config, servers = build_protocol_cluster(5, 2)
        reader_a = Process("c1", network)
        reader_b = Process("c2", network)

        async def go():
            await servers["s1"].transfer("s2", 0.05)
            first = await read_changes(reader_a, "s2", config)
            second = await read_changes(reader_b, "s2", config)
            return first, second

        first, second = loop.run_until_complete(go())
        assert first.issubset(second)

    def test_write_back_spreads_changes_to_lagging_servers(self):
        """Algorithm 3's write-back stores the union at >= n-f servers."""
        loop, network, config, servers = build_protocol_cluster(5, 1)
        client = Process("c1", network)

        async def go():
            await servers["s1"].transfer("s2", 0.1)
            await read_changes(client, "s2", config)

        loop.run_until_complete(go())
        loop.run()
        holders = sum(
            1
            for server in servers.values()
            if Change("s1", 2, "s2", 0.1) in server.changes
        )
        assert holders >= config.n - config.f

    def test_servers_can_invoke_read_changes_too(self):
        loop, network, config, servers = build_protocol_cluster(5, 1)

        async def go():
            await servers["s1"].transfer("s2", 0.1)
            return await read_changes(servers["s3"], "s2", config)

        changes = loop.run_until_complete(go())
        assert changes.weight_of("s2") == pytest.approx(1.1)
