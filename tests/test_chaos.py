"""The chaos-campaign engine: fault space, oracles, determinism, report.

The load-bearing guarantees under test:

* :func:`repro.chaos.space.fault_axes` derives self-contained, buildable
  axis values (benign ones recover/heal; aggressive ones add the killers),
  and the Latin-hypercube sampler stratifies every axis — including the
  gray-failure dimensions.
* The oracle stack flags what must never happen (run failures, lost
  operations, lost weight, trace-invariant errors) and *ranks* what is
  merely slow.
* A campaign report is deterministic in (scenario, sample, seed): reruns,
  worker counts and ``PYTHONHASHSEED`` leave its bytes unchanged.
* The committed example campaign is reproducible: its worst emitted spec
  re-runs to exactly the p99s the report recorded.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from collections import Counter

import pytest

from repro.chaos import Campaign, fault_axes, run_campaign
from repro.chaos.oracles import (
    LatencyDegradationOracle,
    MAX_DEGRADATION,
    ResultOracle,
    RunOutcome,
    TraceInvariantOracle,
)
from repro.errors import ConfigurationError
from repro.experiments import StreamTelemetry
from repro.experiments.cli import main
from repro.experiments.executor import execute_run, run_with_stable_stack
from repro.experiments.registry import get_scenario, register_spec
from repro.experiments.spec import load_spec_file
from repro.experiments.sweep import RunSpec, Sweep

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
CAMPAIGN_REPORT = os.path.join(
    REPO_ROOT, "examples", "campaigns", "quickstart-campaign.jsonl"
)
WORST_SPEC = os.path.join(
    REPO_ROOT, "examples", "specs", "quickstart-chaos-1.json"
)


def quickstart_spec():
    return get_scenario("quickstart").spec


@pytest.fixture(scope="module")
def campaign():
    """One small aggressive campaign, shared by the read-only assertions."""
    return run_campaign("quickstart", sample=6, seed=3, min_quorum=3)


class TestFaultAxes:
    def test_every_fault_axis_includes_the_no_fault_value(self):
        axes = fault_axes(quickstart_spec())
        for path in ("faults.outages", "faults.partitions", "latency.degraded"):
            assert () in axes[path], path

    def test_benign_values_stay_within_the_fault_budget(self):
        axes = fault_axes(quickstart_spec(), benign=True)
        for value in axes["faults.outages"]:
            for _, at, until in value:
                assert until is not None and until > at
        for value in axes["faults.partitions"]:
            for at, _, heal_at in value:
                assert heal_at is not None and heal_at > at
        assert all(len(value) <= 1 for value in axes["latency.degraded"])
        assert all(stall == 0.0 for stall in axes["latency.degraded_stall"])

    def test_aggressive_region_adds_the_known_killers(self):
        axes = fault_axes(quickstart_spec())
        assert any(
            value and all(until is None for _, _, until in value)
            for value in axes["faults.outages"]
        ), "no permanent quorum-blocking crash set"
        assert any(
            len(value) > 1 for value in axes["latency.degraded"]
        ), "no quorum-blocking gray set"
        assert max(axes["latency.degraded_factor"]) >= 8.0
        assert max(axes["latency.degraded_stall"]) > 0.0

    def test_any_combination_of_axis_values_builds(self):
        # LHS combines axis values freely, so the *worst* value of every
        # axis at once must still be a valid spec.
        spec = quickstart_spec()
        axes = fault_axes(spec)
        overrides = {path: values[-1] for path, values in axes.items()}
        spec.with_overrides(overrides).validate()

    def test_injection_times_are_validated(self):
        with pytest.raises(ConfigurationError, match="at least one"):
            fault_axes(quickstart_spec(), times=())
        with pytest.raises(ConfigurationError, match="non-negative"):
            fault_axes(quickstart_spec(), times=(4.0, -1.0))


class TestLHSStratification:
    @pytest.mark.parametrize("sample,seed", [(8, 0), (16, 1), (5, 2)])
    def test_marginals_are_stratified_on_every_axis(self, sample, seed):
        # The LHS guarantee, per axis: min(sample, len(values)) distinct
        # values, with per-value counts differing by at most one.  This
        # covers the gray-failure dimensions, not just the crash axes.
        axes = fault_axes(quickstart_spec())
        runs = Sweep.of("quickstart", grid=axes).sample_lhs(sample, seed=seed)
        assert len(runs) == sample
        for path, values in axes.items():
            marginal = Counter(run.params_dict[path] for run in runs)
            assert len(marginal) == min(sample, len(values)), path
            assert max(marginal.values()) - min(marginal.values()) <= 1, path


class TestOracles:
    def outcome(self, result, trace=None, baseline=None):
        return RunOutcome(index=0, run_id="r", params={}, result=result,
                          trace_records=trace, baseline=baseline)

    def test_trace_oracle_records_an_absent_trace(self):
        report = TraceInvariantOracle().judge(self.outcome({"operations": 1}))
        assert report.details == {"checked": False}
        assert not report.violations

    def test_trace_oracle_accepts_an_empty_trace(self):
        report = TraceInvariantOracle().judge(
            self.outcome({"operations": 1}, trace=[])
        )
        assert report.details["checked"] is True
        assert not report.violations

    def test_result_oracle_flags_a_captured_run_error(self):
        report = ResultOracle().judge(self.outcome(
            {"error": {"type": "DeadlockError", "message": "stuck at t=4"}}
        ))
        assert [v.check for v in report.violations] == ["run-failure"]
        assert "DeadlockError" in report.violations[0].message
        assert report.details == {"completed": False}

    def test_result_oracle_accounts_watchdog_timeouts(self):
        report = ResultOracle().judge(self.outcome(
            {"error": {"type": "WatchdogTimeout", "message": "killed",
                       "run_timeout": 1.0}}
        ))
        assert [v.check for v in report.violations] == ["run-timeout"]
        assert report.details == {"completed": False, "timed_out": True}

    def test_result_oracle_accounts_quarantined_configs(self):
        report = ResultOracle().judge(self.outcome(
            {"error": {"type": "WorkerCrashed", "message": "died twice",
                       "attempts": 2, "quarantined": True}}
        ))
        assert [v.check for v in report.violations] == ["run-quarantined"]
        assert report.details == {"completed": False, "quarantined": True}

    def test_result_oracle_marks_unexpected_captured_errors(self):
        report = ResultOracle().judge(self.outcome(
            {"error": {"type": "RecursionError", "message": "too deep",
                       "unexpected": True}}
        ))
        assert [v.check for v in report.violations] == ["run-failure"]
        assert report.details == {"completed": False, "unexpected": True}

    def test_result_oracle_flags_unaccounted_operations(self):
        report = ResultOracle().judge(self.outcome(
            {"operations": 18, "workload": {"operations": 20}}
        ))
        assert [v.check for v in report.violations] == ["ops-unaccounted"]

    def test_result_oracle_checks_weight_conservation(self):
        ok = ResultOracle(expected_weight=5.0).judge(self.outcome(
            {"operations": 4, "weights": {"s1": 2.0, "s2": 3.0}}
        ))
        assert not ok.violations
        lost = ResultOracle(expected_weight=5.0).judge(self.outcome(
            {"operations": 4, "weights": {"s1": 2.0, "s2": 2.5}}
        ))
        assert [v.check for v in lost.violations] == ["weight-conservation"]

    def test_result_oracle_flags_negative_weight(self):
        report = ResultOracle().judge(self.outcome(
            {"operations": 4, "weights": {"s1": -0.5, "s2": 5.5}}
        ))
        assert [v.check for v in report.violations] == ["negative-weight"]

    def test_latency_oracle_ranks_but_never_flags(self):
        baseline = {"read_latency": {"p99": 2.0}, "write_latency": {"p99": 4.0}}
        report = LatencyDegradationOracle(threshold=2.0).judge(self.outcome(
            {"read_latency": {"p99": 7.0}, "write_latency": {"p99": 4.0}},
            baseline=baseline,
        ))
        assert not report.violations
        assert report.details["degradation"] == pytest.approx(3.5)
        assert report.details["degraded"] is True

    def test_latency_degradation_is_capped(self):
        baseline = {"read_latency": {"p99": 1.0}, "write_latency": {"p99": 1.0}}
        report = LatencyDegradationOracle().judge(self.outcome(
            {"read_latency": {"p99": 1e6}, "write_latency": {"p99": 1.0}},
            baseline=baseline,
        ))
        assert report.details["degradation"] == MAX_DEGRADATION

    def test_latency_oracle_skips_failed_runs(self):
        report = LatencyDegradationOracle().judge(self.outcome(
            {"error": {"type": "SimTimeoutError", "message": ""}},
            baseline={"read_latency": {"p99": 1.0}},
        ))
        assert report.details["degradation"] is None


class TestCampaignDeterminism:
    def test_same_seed_is_byte_identical_and_worker_independent(self, campaign):
        again = run_campaign("quickstart", sample=6, seed=3, min_quorum=3)
        parallel = run_campaign("quickstart", sample=6, seed=3, min_quorum=3,
                                workers=2)
        reference = list(campaign.jsonl_lines())
        assert list(again.jsonl_lines()) == reference
        assert list(parallel.jsonl_lines()) == reference

    @pytest.mark.parametrize("hashseed", ["1", "999"])
    def test_report_is_hashseed_independent(self, tmp_path, hashseed):
        path = tmp_path / f"seed{hashseed}.jsonl"
        env = dict(os.environ, PYTHONHASHSEED=hashseed,
                   PYTHONPATH=os.path.join(REPO_ROOT, "src"))
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "chaos", "--scenario",
             "quickstart", "--sample", "4", "--seed", "0", "--report",
             str(path), "--quiet", "--no-progress"],
            capture_output=True, text=True, env=env, cwd=REPO_ROOT,
            timeout=300,
        )
        assert completed.returncode == 0, completed.stderr
        lines = path.read_text(encoding="utf-8").splitlines()
        assert len(lines) == 5
        # Both parametrizations must produce these exact bytes, so the
        # digest pins hashseed-independence without a golden file.
        import hashlib

        digest = hashlib.sha256(path.read_bytes()).hexdigest()
        reference = tmp_path / "reference.json"
        # Compare against an in-process run with the CLI's default knobs
        # (its --times default parses to ints).
        local = run_campaign("quickstart", sample=4, seed=0, times=(4, 8, 12))
        reference.write_text(
            "\n".join(local.jsonl_lines()) + "\n", encoding="utf-8"
        )
        assert digest == hashlib.sha256(reference.read_bytes()).hexdigest()


class TestCampaignReport:
    def test_header_carries_the_campaign_parameters(self, campaign):
        meta = campaign.header["campaign"]
        assert meta["scenario"] == "quickstart"
        assert meta["sample"] == 6 and meta["seed"] == 3
        assert meta["runs"] == 6
        assert set(meta["axes"]) == {
            "faults.outages", "faults.partitions", "latency.degraded",
            "latency.degraded_factor", "latency.degraded_stall",
        }
        baseline = campaign.header["baseline"]
        assert baseline["violations"] == []
        assert baseline["read_p99"] > 0 and baseline["write_p99"] > 0

    def test_entries_are_ranked_by_severity_then_index(self, campaign):
        ranks = [entry["rank"] for entry in campaign.entries]
        assert ranks == list(range(1, len(campaign.entries) + 1))
        keys = [(-entry["severity"], entry["index"])
                for entry in campaign.entries]
        assert keys == sorted(keys)
        assert campaign.worst is campaign.entries[0]

    def test_params_stay_within_the_advertised_axes(self, campaign):
        axes = campaign.header["campaign"]["axes"]
        for entry in campaign.entries:
            assert set(entry["params"]) == set(axes)

    def test_report_lines_are_canonical_json(self, campaign):
        for line in campaign.jsonl_lines():
            parsed = json.loads(line)
            assert line == json.dumps(parsed, sort_keys=True)

    def test_worst_specs_round_trip(self, campaign, tmp_path):
        paths = campaign.write_worst_specs(str(tmp_path), top=2)
        assert len(paths) == 2
        for rank, path in enumerate(paths, 1):
            spec = load_spec_file(path)
            assert spec.name == os.path.splitext(os.path.basename(path))[0]
            assert spec.name == f"quickstart-chaos-{rank}"
            spec.validate()
            assert f"#{rank}" in spec.description

    def test_function_scenarios_are_rejected(self):
        with pytest.raises(ConfigurationError, match="declarative"):
            run_campaign("asset-transfer", sample=2)


class TestCommittedCampaign:
    def read_report(self):
        with open(CAMPAIGN_REPORT, encoding="utf-8") as handle:
            lines = [json.loads(line) for line in handle]
        return lines[0], lines[1:]

    def test_report_parses_and_found_a_degradation(self):
        header, entries = self.read_report()
        assert header["campaign"]["runs"] == len(entries) == 16
        assert header["campaign"]["violations"] == 0
        worst = entries[0]
        assert worst["rank"] == 1
        # The acceptance bar: the campaign surfaced a config at >= 2x p99.
        assert worst["oracles"]["latency"]["degradation"] >= 2.0

    def test_worst_spec_reproduces_the_reported_p99s(self):
        header, entries = self.read_report()
        worst = entries[0]
        spec = load_spec_file(WORST_SPEC)
        assert spec.name == "quickstart-chaos-1"
        register_spec(spec, replace=True)
        try:
            result = run_with_stable_stack(
                execute_run, RunSpec(scenario=spec.name)
            ).result
        finally:
            from repro.experiments.registry import unregister

            unregister(spec.name)
        assert result["read_latency"]["p99"] == (
            worst["oracles"]["latency"]["read_p99"]
        )
        assert result["write_latency"]["p99"] == (
            worst["oracles"]["latency"]["write_p99"]
        )
        baseline = header["baseline"]
        assert result["read_latency"]["p99"] >= 2.0 * baseline["read_p99"]


class TestChaosCli:
    def test_cli_writes_report_and_worst_specs(self, tmp_path, capsys):
        report = tmp_path / "report.jsonl"
        out_dir = tmp_path / "specs"
        assert main([
            "chaos", "--scenario", "quickstart", "--sample", "3", "--seed",
            "1", "--report", str(report), "--out-dir", str(out_dir),
            "--top", "1", "--quiet", "--no-progress",
        ]) == 0
        captured = capsys.readouterr()
        assert "campaign over 'quickstart'" in captured.err
        lines = report.read_text(encoding="utf-8").splitlines()
        assert len(lines) == 4
        emitted = sorted(os.listdir(out_dir))
        assert emitted == ["quickstart-chaos-1.json"]
        load_spec_file(str(out_dir / emitted[0])).validate()

    def test_fail_on_violations_gates_benign_campaigns(self, tmp_path, capsys):
        # The CI smoke contract: a benign campaign must be violation-free,
        # so --fail-on-violations exits 0 on it.
        assert main([
            "chaos", "--scenario", "quickstart", "--benign", "--sample", "3",
            "--seed", "0", "--fail-on-violations", "--quiet", "--no-progress",
        ]) == 0
        capsys.readouterr()


class TestCampaignResilience:
    """Journaled resume of judged entries; resumed report == uninterrupted."""

    def test_legacy_campaigns_have_no_resilience_block(self, campaign):
        # The off-path must keep its bytes (committed reports, baselines).
        assert "resilience" not in campaign.header["campaign"]

    def test_journaled_campaign_resumes_byte_identical(self, tmp_path):
        journal = str(tmp_path / "journal.jsonl")
        full = run_campaign("quickstart", sample=4, seed=5,
                            journal_path=journal)
        assert full.header["campaign"]["resilience"] == {
            "run_timeout": None, "max_attempts": 1,
            "retries": 0, "timeouts": 0, "quarantined": 0,
        }
        with open(journal, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
        assert len(lines) == 6  # header + baseline + 4 judged entries
        trunc = str(tmp_path / "trunc.jsonl")
        with open(trunc, "w", encoding="utf-8") as handle:
            handle.writelines(lines[:4])  # lose the last two entries

        telemetry = StreamTelemetry()
        resumed = run_campaign("quickstart", sample=4, seed=5,
                               journal_path=trunc, resume=True,
                               telemetry=telemetry)
        assert telemetry.resumed == 2
        assert list(resumed.jsonl_lines()) == list(full.jsonl_lines())

    def test_resume_replays_the_journaled_baseline(self, tmp_path):
        journal = str(tmp_path / "journal.jsonl")
        run_campaign("quickstart", sample=2, seed=5, journal_path=journal)
        with open(journal, "r", encoding="utf-8") as handle:
            records = [json.loads(line) for line in handle]
        assert records[1]["digest"] == "baseline"
        assert "result" in records[1]

    def test_journal_from_other_knobs_is_rejected(self, tmp_path):
        journal = str(tmp_path / "journal.jsonl")
        run_campaign("quickstart", sample=2, seed=5, journal_path=journal)
        with pytest.raises(ConfigurationError, match="different"):
            run_campaign("quickstart", sample=2, seed=6,
                         journal_path=journal, resume=True)

    def test_cli_chaos_resume_is_byte_identical(self, tmp_path, capsys):
        journal = str(tmp_path / "journal.jsonl")
        full = str(tmp_path / "full.jsonl")
        base = [
            "chaos", "--scenario", "quickstart", "--sample", "3",
            "--seed", "2", "--quiet", "--no-progress",
        ]
        assert main(base + ["--report", full, "--journal", journal]) == 0
        with open(journal, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
        trunc = str(tmp_path / "trunc.jsonl")
        with open(trunc, "w", encoding="utf-8") as handle:
            handle.writelines(lines[:3])
        resumed = str(tmp_path / "resumed.jsonl")
        capsys.readouterr()
        assert main(base + ["--report", resumed, "--resume", trunc]) == 0
        assert "resilience: resumed 1" in capsys.readouterr().err
        with open(full, "rb") as a, open(resumed, "rb") as b:
            assert a.read() == b.read()
