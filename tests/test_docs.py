"""The docs-consistency checks, enforced locally as well as in CI.

``tools/check_docs.py`` is the CI docs job; importing it here makes `pytest`
fail on the same problems (broken relative links, README scenario-table
drift) before a push ever reaches CI.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _load_check_docs():
    spec = importlib.util.spec_from_file_location(
        "check_docs", REPO_ROOT / "tools" / "check_docs.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


check_docs = _load_check_docs()


def test_markdown_files_found():
    names = {path.name for path in check_docs.markdown_files()}
    assert "README.md" in names
    assert "ARCHITECTURE.md" in names


def test_markdown_links_resolve():
    problems = []
    for path in check_docs.markdown_files():
        problems.extend(check_docs.check_links(path))
    assert problems == []


def test_readme_scenario_table_matches_registry():
    assert check_docs.check_scenario_table() == []


def test_link_checker_catches_broken_links(tmp_path):
    bad = tmp_path / "bad.md"
    bad.write_text("see [missing](does-not-exist.md) and [ok](#anchor)")
    problems = check_docs.check_links(bad, root=tmp_path)
    assert len(problems) == 1
    assert "does-not-exist.md" in problems[0]


def test_table_parser_reads_backticked_first_cells(tmp_path):
    readme = tmp_path / "README.md"
    readme.write_text(
        "# x\n\n## Scenario catalogue\n\n"
        "| scenario | what |\n|---|---|\n"
        "| `alpha` | a |\n| `beta` | b |\n\n## Next\n\n| `gamma` | not counted |\n"
    )
    assert check_docs.readme_scenario_names(readme) == {"alpha", "beta"}
