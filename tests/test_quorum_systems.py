"""Tests for the quorum-system substrate, including property-based checks."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError, IntegrityViolation
from repro.quorum import (
    GridQuorumSystem,
    MajorityQuorumSystem,
    TreeQuorumSystem,
    WeightedMajorityQuorumSystem,
    assert_wmqs_available,
    max_tolerable_failures,
    minimum_quorum_cardinality,
    wmqs_is_available,
)
from repro.types import server_set


class TestMajorityQuorumSystem:
    def test_majority_is_quorum(self):
        mqs = MajorityQuorumSystem(server_set(5))
        assert mqs.is_quorum(["s1", "s2", "s3"])

    def test_minority_is_not_quorum(self):
        mqs = MajorityQuorumSystem(server_set(5))
        assert not mqs.is_quorum(["s1", "s2"])

    def test_exact_half_is_not_quorum_even_n(self):
        mqs = MajorityQuorumSystem(server_set(6))
        assert not mqs.is_quorum(["s1", "s2", "s3"])
        assert mqs.is_quorum(["s1", "s2", "s3", "s4"])

    def test_quorum_size_formula(self):
        assert MajorityQuorumSystem(server_set(5)).quorum_size() == 3
        assert MajorityQuorumSystem(server_set(6)).quorum_size() == 4

    def test_max_tolerable_failures(self):
        assert MajorityQuorumSystem(server_set(5)).max_tolerable_failures() == 2
        assert MajorityQuorumSystem(server_set(6)).max_tolerable_failures() == 2
        assert MajorityQuorumSystem(server_set(7)).max_tolerable_failures() == 3

    def test_unknown_member_rejected(self):
        mqs = MajorityQuorumSystem(server_set(3))
        with pytest.raises(ConfigurationError):
            mqs.is_quorum(["s1", "ghost"])

    def test_empty_system_rejected(self):
        with pytest.raises(ConfigurationError):
            MajorityQuorumSystem([])

    def test_duplicate_servers_rejected(self):
        with pytest.raises(ConfigurationError):
            MajorityQuorumSystem(["s1", "s1"])

    def test_minimal_quorums_all_majorities(self):
        mqs = MajorityQuorumSystem(server_set(4))
        minimal = mqs.minimal_quorums()
        assert all(len(q) == 3 for q in minimal)
        assert len(minimal) == 4  # C(4,3)

    def test_intersection_property(self):
        assert MajorityQuorumSystem(server_set(5)).check_intersection()


class TestWeightedMajorityQuorumSystem:
    def test_example2_minority_quorum(self):
        """The Fig. 1 outcome: after reassignment, {s1,s2,s3} is a quorum of 3/7."""
        weights = {
            "s1": 1.2, "s2": 1.2, "s3": 1.2, "s4": 0.8, "s5": 0.8, "s6": 0.8, "s7": 1.0,
        }
        wmqs = WeightedMajorityQuorumSystem(weights)
        assert wmqs.is_quorum(["s1", "s2", "s3"])
        assert wmqs.smallest_quorum_size() == 3

    def test_uniform_weights_match_majority(self):
        servers = server_set(5)
        wmqs = WeightedMajorityQuorumSystem.uniform(servers)
        mqs = MajorityQuorumSystem(servers)
        for subset in (["s1"], ["s1", "s2"], ["s1", "s2", "s3"], list(servers)):
            assert wmqs.is_quorum(subset) == mqs.is_quorum(subset)

    def test_exactly_half_weight_is_not_quorum(self):
        wmqs = WeightedMajorityQuorumSystem({"s1": 1.0, "s2": 1.0})
        assert not wmqs.is_quorum(["s1"])
        assert wmqs.is_quorum(["s1", "s2"])

    def test_negative_weight_rejected(self):
        with pytest.raises(ConfigurationError):
            WeightedMajorityQuorumSystem({"s1": -1.0, "s2": 1.0})

    def test_with_weights_requires_same_servers(self):
        wmqs = WeightedMajorityQuorumSystem({"s1": 1.0, "s2": 1.0})
        with pytest.raises(ConfigurationError):
            wmqs.with_weights({"s1": 1.0, "s3": 1.0})

    def test_with_weights_changes_quorums(self):
        wmqs = WeightedMajorityQuorumSystem({"s1": 1.0, "s2": 1.0, "s3": 1.0})
        assert not wmqs.is_quorum(["s1"])
        heavy = wmqs.with_weights({"s1": 3.0, "s2": 1.0, "s3": 1.0})
        assert heavy.is_quorum(["s1"])

    def test_heaviest_servers(self):
        wmqs = WeightedMajorityQuorumSystem({"s1": 1.0, "s2": 3.0, "s3": 2.0})
        assert wmqs.heaviest_servers(2) == ("s2", "s3")

    def test_smallest_quorum_greedy(self):
        wmqs = WeightedMajorityQuorumSystem({"s1": 5.0, "s2": 1.0, "s3": 1.0, "s4": 1.0})
        assert wmqs.smallest_quorum() == ("s1",)

    def test_weight_of_subset(self):
        wmqs = WeightedMajorityQuorumSystem({"s1": 1.5, "s2": 2.5})
        assert wmqs.weight_of(["s1", "s2"]) == pytest.approx(4.0)

    @settings(max_examples=60, deadline=None)
    @given(
        weights=st.lists(
            st.floats(min_value=0.1, max_value=10.0, allow_nan=False),
            min_size=2,
            max_size=7,
        )
    )
    def test_any_two_quorums_intersect(self, weights):
        """The defining property of quorum systems holds for arbitrary weights."""
        weight_map = {f"s{i+1}": w for i, w in enumerate(weights)}
        wmqs = WeightedMajorityQuorumSystem(weight_map)
        assert wmqs.check_intersection()

    @settings(max_examples=60, deadline=None)
    @given(
        weights=st.lists(
            st.floats(min_value=0.1, max_value=10.0, allow_nan=False),
            min_size=3,
            max_size=8,
        )
    )
    def test_complement_of_quorum_is_not_quorum(self, weights):
        weight_map = {f"s{i+1}": w for i, w in enumerate(weights)}
        wmqs = WeightedMajorityQuorumSystem(weight_map)
        quorum = set(wmqs.smallest_quorum())
        complement = set(weight_map) - quorum
        if complement:
            assert not wmqs.is_quorum(complement)


class TestGridQuorumSystem:
    def test_full_row_plus_cover_is_quorum(self):
        grid = GridQuorumSystem(server_set(9), cols=3)
        # rows: (s1,s2,s3) (s4,s5,s6) (s7,s8,s9)
        assert grid.is_quorum(["s1", "s2", "s3", "s4", "s7"])

    def test_row_cover_without_full_row_is_not_quorum(self):
        grid = GridQuorumSystem(server_set(9), cols=3)
        assert not grid.is_quorum(["s1", "s4", "s7"])

    def test_full_row_without_cover_is_not_quorum(self):
        grid = GridQuorumSystem(server_set(9), cols=3)
        assert not grid.is_quorum(["s1", "s2", "s3"])

    def test_typical_quorum_size(self):
        grid = GridQuorumSystem(server_set(9), cols=3)
        assert grid.typical_quorum_size() == 5

    def test_intersection_property(self):
        assert GridQuorumSystem(server_set(9), cols=3).check_intersection()

    def test_row_of(self):
        grid = GridQuorumSystem(server_set(9), cols=3)
        assert grid.row_of("s5") == 1

    def test_cols_exceeding_n_rejected(self):
        with pytest.raises(ConfigurationError):
            GridQuorumSystem(server_set(3), cols=5)


class TestTreeQuorumSystem:
    def test_root_plus_leaf_path_is_quorum(self):
        tree = TreeQuorumSystem(server_set(7))
        minimal = tree.minimal_quorums()
        assert minimal, "tree quorum system must have quorums"
        assert tree.check_intersection()

    def test_all_servers_is_quorum(self):
        tree = TreeQuorumSystem(server_set(7))
        assert tree.is_quorum(server_set(7))

    def test_empty_subset_is_not_quorum(self):
        tree = TreeQuorumSystem(server_set(7))
        assert not tree.is_quorum([])

    def test_single_root_small_tree(self):
        tree = TreeQuorumSystem(server_set(1))
        assert tree.is_quorum(["s1"])

    def test_smaller_than_majority_quorum_exists(self):
        """Tree quorums can be logarithmic, i.e. smaller than a majority."""
        tree = TreeQuorumSystem(server_set(7))
        assert tree.smallest_quorum_size() <= MajorityQuorumSystem(server_set(7)).quorum_size()


class TestAvailabilityProperty:
    def test_uniform_weights_available_up_to_minority(self):
        weights = {f"s{i}": 1.0 for i in range(1, 6)}
        assert wmqs_is_available(weights, 2)
        assert not wmqs_is_available(weights, 3)

    def test_heavy_single_server_breaks_availability(self):
        weights = {"s1": 10.0, "s2": 1.0, "s3": 1.0, "s4": 1.0, "s5": 1.0}
        assert not wmqs_is_available(weights, 1)

    def test_f_zero_always_available(self):
        assert wmqs_is_available({"s1": 1.0}, 0)

    def test_f_at_least_n_unavailable(self):
        assert not wmqs_is_available({"s1": 1.0, "s2": 1.0}, 2)

    def test_negative_f_rejected(self):
        with pytest.raises(ValueError):
            wmqs_is_available({"s1": 1.0}, -1)

    def test_assert_raises_on_violation(self):
        with pytest.raises(IntegrityViolation):
            assert_wmqs_available({"s1": 10.0, "s2": 1.0, "s3": 1.0}, 1)

    def test_assert_passes_on_valid(self):
        assert_wmqs_available({"s1": 1.0, "s2": 1.0, "s3": 1.0}, 1)

    def test_max_tolerable_failures_uniform(self):
        weights = {f"s{i}": 1.0 for i in range(1, 8)}
        assert max_tolerable_failures(weights) == 3

    def test_max_tolerable_failures_skewed(self):
        weights = {"s1": 3.0, "s2": 1.0, "s3": 1.0, "s4": 1.0, "s5": 1.0}
        assert max_tolerable_failures(weights) == 1

    def test_minimum_quorum_cardinality(self):
        weights = {"s1": 1.2, "s2": 1.2, "s3": 1.2, "s4": 0.8, "s5": 0.8, "s6": 0.8, "s7": 1.0}
        assert minimum_quorum_cardinality(weights) == 3
        uniform = {f"s{i}": 1.0 for i in range(1, 8)}
        assert minimum_quorum_cardinality(uniform) == 4

    def test_zero_total_weight_rejected(self):
        with pytest.raises(IntegrityViolation):
            minimum_quorum_cardinality({"s1": 0.0, "s2": 0.0})

    @settings(max_examples=80, deadline=None)
    @given(
        weights=st.lists(
            st.floats(min_value=0.1, max_value=5.0, allow_nan=False),
            min_size=3,
            max_size=9,
        ),
        f=st.integers(min_value=1, max_value=4),
    )
    def test_availability_implies_correct_quorum_exists(self, weights, f):
        """Property 1 ⇒ any n-f servers hold more than half the weight."""
        weight_map = {f"s{i+1}": w for i, w in enumerate(weights)}
        if f >= len(weight_map):
            return
        if not wmqs_is_available(weight_map, f):
            return
        total = sum(weight_map.values())
        ranked = sorted(weight_map.values())  # the n-f *lightest* servers: worst case
        survivors = ranked[: len(ranked) - f]
        assert sum(survivors) > total / 2 - 1e-6


class TestReadWriteIntersection:
    """The defining safety property, across every implemented quorum system.

    An atomic register is linearizable only if every read quorum intersects
    every write quorum.  All four systems here are symmetric (reads and
    writes use the same quorums), so the property reduces to: any two
    subsets the system accepts as quorums share at least one server.  The
    weight vectors are randomized but *seeded* — hypothesis drives the seed,
    so failures replay exactly.
    """

    @staticmethod
    def _systems(n, weights):
        systems = [
            MajorityQuorumSystem(server_set(n)),
            WeightedMajorityQuorumSystem(weights),
            TreeQuorumSystem(server_set(n)),
        ]
        for cols in (2, 3):
            if cols <= n:
                systems.append(GridQuorumSystem(server_set(n), cols=cols))
        return systems

    @settings(max_examples=120, deadline=None)
    @given(
        n=st.integers(min_value=3, max_value=9),
        seed=st.integers(min_value=0, max_value=9999),
        read_bits=st.integers(min_value=1, max_value=511),
        write_bits=st.integers(min_value=1, max_value=511),
    )
    def test_read_quorum_intersects_write_quorum(
        self, n, seed, read_bits, write_bits
    ):
        servers = server_set(n)
        rng = random.Random(seed)
        weights = {pid: rng.uniform(0.1, 5.0) for pid in servers}
        read = [pid for i, pid in enumerate(servers) if read_bits >> i & 1]
        write = [pid for i, pid in enumerate(servers) if write_bits >> i & 1]
        for system in self._systems(n, weights):
            if system.is_quorum(read) and system.is_quorum(write):
                assert set(read) & set(write), (
                    f"{type(system).__name__}: disjoint read quorum {read} "
                    f"and write quorum {write} (weights {weights})"
                )

    @settings(max_examples=100, deadline=None)
    @given(
        n=st.integers(min_value=3, max_value=8),
        seed=st.integers(min_value=0, max_value=9999),
        subset_bits=st.integers(min_value=1, max_value=255),
        source_index=st.integers(min_value=0, max_value=7),
        target_index=st.integers(min_value=0, max_value=7),
        fraction=st.floats(min_value=0.1, max_value=0.9, allow_nan=False),
    )
    def test_weighted_threshold_monotone_under_transfer(
        self, n, seed, subset_bits, source_index, target_index, fraction
    ):
        """Weight transfer moves the threshold monotonically.

        Transfers preserve the total weight, so the quorum threshold
        (half the total) is constant: a subset that gains weight from the
        outside can only stay a quorum, and a subset that leaks weight to
        the outside can only stay a non-quorum.
        """
        servers = server_set(n)
        rng = random.Random(seed)
        weights = {pid: rng.uniform(0.5, 5.0) for pid in servers}
        wmqs = WeightedMajorityQuorumSystem(weights)
        subset = {pid for i, pid in enumerate(servers) if subset_bits >> i & 1}
        outside = [pid for pid in servers if pid not in subset]
        if not subset or not outside:
            return
        inside = sorted(subset)[source_index % len(subset)]
        external = outside[target_index % len(outside)]

        if wmqs.is_quorum(subset):
            # outside -> inside: the quorum's share only grows.
            delta = fraction * weights[external]
            gained = dict(weights)
            gained[external] -= delta
            gained[inside] += delta
            assert WeightedMajorityQuorumSystem(gained).is_quorum(subset)
        else:
            # inside -> outside: the non-quorum's share only shrinks.
            delta = fraction * weights[inside]
            leaked = dict(weights)
            leaked[inside] -= delta
            leaked[external] += delta
            assert not WeightedMajorityQuorumSystem(leaked).is_quorum(subset)
