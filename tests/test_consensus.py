"""Tests for the consensus substrate (Paxos and the sequencer)."""

from __future__ import annotations

import pytest

from repro.consensus.paxos import PaxosNode
from repro.consensus.sequencer import Sequencer, TotalOrderClient
from repro.consensus.spec import (
    ConsensusResult,
    check_agreement,
    check_termination,
    check_validity,
)
from repro.errors import ConfigurationError
from repro.net.latency import ConstantLatency, UniformLatency
from repro.net.network import Network
from repro.net.process import Process
from repro.net.simloop import SimLoop, gather


def build_paxos(n, latency=None, seed=0):
    loop = SimLoop()
    network = Network(loop, latency or UniformLatency(0.5, 2.0, seed=seed))
    participants = [f"p{i}" for i in range(1, n + 1)]
    nodes = {
        pid: PaxosNode(pid, network, participants, seed=seed) for pid in participants
    }
    return loop, network, nodes


class TestConsensusSpecHelpers:
    def test_agreement_checker(self):
        results = [
            ConsensusResult("p1", "a", "x", 1.0),
            ConsensusResult("p2", "b", "x", 2.0),
        ]
        assert check_agreement(results)
        results.append(ConsensusResult("p3", "c", "y", 3.0))
        assert not check_agreement(results)

    def test_validity_checker(self):
        results = [ConsensusResult("p1", "a", "a", 1.0)]
        assert check_validity(results)
        assert not check_validity([ConsensusResult("p1", "a", "never-proposed", 1.0)])

    def test_termination_checker(self):
        results = [ConsensusResult("p1", "a", "a", 1.0)]
        assert check_termination(results, ["p1"])
        assert not check_termination(results, ["p1", "p2"])


class TestPaxos:
    def test_single_proposer_decides_its_value(self):
        loop, _, nodes = build_paxos(3)

        result = loop.run_until_complete(nodes["p1"].propose("only-value"))
        assert result.decided == "only-value"

    def test_concurrent_proposers_agree(self):
        loop, _, nodes = build_paxos(5, seed=3)

        results = loop.run_until_complete(
            gather(loop, [nodes[f"p{i}"].propose(f"v{i}") for i in range(1, 6)])
        )
        assert check_agreement(results)
        assert check_validity(results)
        assert check_termination(results, [f"p{i}" for i in range(1, 6)])

    def test_agreement_with_minority_crashes(self):
        loop, network, nodes = build_paxos(5, seed=5)
        network.crash("p4")
        network.crash("p5")

        results = loop.run_until_complete(
            gather(loop, [nodes[f"p{i}"].propose(f"v{i}") for i in range(1, 4)])
        )
        assert check_agreement(results)

    def test_learner_catches_decision_without_proposing(self):
        loop, _, nodes = build_paxos(3, seed=1)

        async def go():
            await nodes["p1"].propose("decided")
            return await nodes["p3"].decided

        assert loop.run_until_complete(go()) == "decided"

    def test_non_participant_rejected(self):
        loop = SimLoop()
        network = Network(loop, ConstantLatency(1.0))
        with pytest.raises(ConfigurationError):
            PaxosNode("outsider", network, ["p1", "p2"])

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_agreement_across_schedules(self, seed):
        loop, _, nodes = build_paxos(4, seed=seed)
        results = loop.run_until_complete(
            gather(loop, [nodes[f"p{i}"].propose(i) for i in range(1, 5)])
        )
        assert check_agreement(results)
        assert results[0].decided in {1, 2, 3, 4}


class StateMachineReplica(Process):
    """Tiny replica used to exercise the total-order client."""

    def __init__(self, pid, network, sequencer):
        super().__init__(pid, network)
        self.log = []
        self.order = TotalOrderClient(self, sequencer, self._apply)

    def _apply(self, submitter, command):
        self.log.append((submitter, command))
        return len(self.log)


def build_sequencer_cluster(n_replicas):
    loop = SimLoop()
    network = Network(loop, UniformLatency(0.5, 1.5, seed=2))
    replica_ids = [f"r{i}" for i in range(1, n_replicas + 1)]
    sequencer = Sequencer("seq", network, replica_ids)
    replicas = {pid: StateMachineReplica(pid, network, "seq") for pid in replica_ids}
    return loop, network, sequencer, replicas


class TestSequencer:
    def test_all_replicas_apply_in_the_same_order(self):
        loop, _, sequencer, replicas = build_sequencer_cluster(4)

        async def submit(replica, count):
            for index in range(count):
                await replica.order.submit(f"{replica.pid}-cmd{index}")

        loop.run_until_complete(
            gather(loop, [submit(replica, 3) for replica in replicas.values()])
        )
        loop.run()
        logs = [replica.log for replica in replicas.values()]
        assert all(log == logs[0] for log in logs)
        assert len(logs[0]) == 12

    def test_submit_resolves_with_apply_result(self):
        loop, _, _, replicas = build_sequencer_cluster(2)

        async def go():
            first = await replicas["r1"].order.submit("a")
            second = await replicas["r1"].order.submit("b")
            return first, second

        first, second = loop.run_until_complete(go())
        assert (first, second) == (1, 2)

    def test_sequencer_log_matches_applied_count(self):
        loop, _, sequencer, replicas = build_sequencer_cluster(3)

        async def go():
            for index in range(5):
                await replicas["r2"].order.submit(index)

        loop.run_until_complete(go())
        loop.run()
        assert len(sequencer.ordered_log) == 5
        assert all(replica.order.applied_count == 5 for replica in replicas.values())

    def test_crashed_sequencer_blocks_submissions(self):
        from repro.errors import DeadlockError

        loop, network, sequencer, replicas = build_sequencer_cluster(3)
        network.crash("seq")

        async def go():
            await replicas["r1"].order.submit("stuck")

        with pytest.raises(DeadlockError):
            loop.run_until_complete(go())
