"""Tests for the ``repro.bench`` continuous-benchmarking subsystem.

The contract under test: benchmarks are registered and discoverable, their
deterministic counters are invariant across invocations (wall time is the
only noise), trajectory files accumulate run history, ``--compare`` reports
speedups and flags counter divergence, and ``--check`` is a working CI gate
against the committed expectations file.
"""

from __future__ import annotations

import json
import os

import pytest

from repro import bench
from repro.bench.core import BenchResult, _BENCHMARKS, register_benchmark
from repro.errors import ConfigurationError
from repro.experiments.cli import main


@pytest.fixture
def scratch_benchmark():
    """Register a tiny throwaway benchmark; unregister on teardown."""
    calls = {"count": 0}

    def fn(quick):
        calls["count"] += 1
        return {"events": 10, "ops": 5, "counters": {"width": 2}}

    entry = register_benchmark("scratch", "throwaway", fn)
    yield entry, calls
    _BENCHMARKS.pop("scratch", None)


class TestRegistry:
    def test_suite_registers_at_least_four_benchmarks(self):
        names = bench.benchmark_names()
        assert len(names) >= 4
        assert {"event-loop", "abd-round", "sharded-zipfian", "sweep"} <= set(names)

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown benchmark"):
            bench.get_benchmark("nope")

    def test_duplicate_registration_rejected(self, scratch_benchmark):
        with pytest.raises(ConfigurationError, match="already registered"):
            register_benchmark("scratch", "again", lambda quick: {})


class TestHarness:
    def test_counters_are_invariant_across_invocations(self):
        first = bench.run_benchmark("event-loop", quick=True)
        second = bench.run_benchmark("event-loop", quick=True)
        assert first.deterministic_view() == second.deterministic_view()
        assert first.events > 0
        assert first.ops > 0

    def test_repeat_takes_best_wall_and_checks_determinism(self, scratch_benchmark):
        entry, calls = scratch_benchmark
        result = bench.run_benchmark("scratch", quick=True, repeat=3)
        assert calls["count"] == 3
        assert result.repeat == 3
        assert result.events == 10 and result.ops == 5

    def test_nondeterministic_benchmark_rejected(self):
        drifting = iter(range(100))

        def fn(quick):
            return {"events": next(drifting), "ops": 1}

        register_benchmark("drift", "bad", fn)
        try:
            with pytest.raises(ConfigurationError, match="non-deterministic"):
                bench.run_benchmark("drift", repeat=2)
        finally:
            _BENCHMARKS.pop("drift", None)

    def test_missing_counts_rejected(self):
        register_benchmark("hollow", "bad", lambda quick: {"events": 1})
        try:
            with pytest.raises(ConfigurationError, match="ops"):
                bench.run_benchmark("hollow")
        finally:
            _BENCHMARKS.pop("hollow", None)

    def test_rates_derive_from_wall_time(self):
        result = BenchResult(
            name="x", quick=True, repeat=1, wall_seconds=2.0, events=100, ops=10
        )
        assert result.events_per_sec == 50.0
        assert result.ops_per_sec == 5.0


class TestTrajectory:
    def _result(self, wall=0.5):
        return BenchResult(
            name="event-loop", quick=True, repeat=1,
            wall_seconds=wall, events=100, ops=50, counters={"tasks": 2},
        )

    def test_appends_runs_over_invocations(self, tmp_path):
        path = bench.append_trajectory(self._result(0.5), str(tmp_path))
        bench.append_trajectory(self._result(0.4), str(tmp_path))
        with open(path) as handle:
            payload = json.load(handle)
        assert payload["benchmark"] == "event-loop"
        assert [run["wall_seconds"] for run in payload["runs"]] == [0.5, 0.4]
        assert all("timestamp" in run for run in payload["runs"])

    def test_rejects_foreign_files(self, tmp_path):
        path = tmp_path / "BENCH_event-loop.json"
        path.write_text('{"benchmark": "other", "runs": []}')
        with pytest.raises(ConfigurationError, match="not a trajectory"):
            bench.append_trajectory(self._result(), str(tmp_path))

    def test_load_results_accepts_dumps_and_trajectories(self, tmp_path):
        dump = tmp_path / "results.json"
        bench.write_results_json([self._result(0.3)], str(dump))
        assert bench.load_results_json(str(dump))[0]["benchmark"] == "event-loop"
        trajectory = bench.append_trajectory(self._result(0.2), str(tmp_path))
        loaded = bench.load_results_json(trajectory)
        assert len(loaded) == 1 and loaded[0]["wall_seconds"] == 0.2


class TestCompare:
    def test_speedup_and_counter_flags(self):
        current = BenchResult(
            name="event-loop", quick=True, repeat=1,
            wall_seconds=0.5, events=100, ops=50,
        )
        prior_ok = current.as_dict() | {"wall_seconds": 1.0}
        prior_bad = current.as_dict() | {"wall_seconds": 1.0, "events": 999}
        rows = bench.compare_results([current], [prior_ok])
        assert rows[0]["speedup"] == pytest.approx(2.0)
        assert rows[0]["counters_match"]
        rows = bench.compare_results([current], [prior_bad])
        assert not rows[0]["counters_match"]

    def test_disjoint_benchmarks_yield_no_rows(self):
        current = BenchResult(
            name="event-loop", quick=True, repeat=1,
            wall_seconds=0.5, events=1, ops=1,
        )
        assert bench.compare_results([current], [{"benchmark": "other"}]) == []


class TestExpectations:
    def test_committed_expectations_match_a_quick_run(self):
        # The CI gate end-to-end: a fresh quick run must match the committed
        # expectations byte-for-byte.
        results = bench.run_benchmarks(bench.benchmark_names(), quick=True)
        problems = bench.check_expectations(
            results, "benchmarks/bench_expectations.json", quick=True
        )
        assert problems == []

    def test_divergence_and_unknown_benchmarks_reported(self, tmp_path):
        result = BenchResult(
            name="event-loop", quick=True, repeat=1,
            wall_seconds=0.1, events=1, ops=1,
        )
        path = tmp_path / "expect.json"
        path.write_text(json.dumps(
            {"quick": {"event-loop": {"events": 2, "ops": 1, "counters": {}}}}
        ))
        problems = bench.check_expectations([result], str(path), quick=True)
        assert len(problems) == 1 and "diverge" in problems[0]
        stranger = BenchResult(
            name="stranger", quick=True, repeat=1,
            wall_seconds=0.1, events=1, ops=1,
        )
        problems = bench.check_expectations([stranger], str(path), quick=True)
        assert "no committed expectation" in problems[0]


class TestBenchCli:
    def test_list_benchmarks(self, capsys):
        assert main(["bench", "--list"]) == 0
        out = capsys.readouterr().out
        assert "event-loop" in out and "sweep" in out

    def test_quick_run_writes_json_and_trajectories(self, tmp_path, capsys):
        json_path = tmp_path / "results.json"
        code = main([
            "bench", "event-loop", "--quick",
            "--out-dir", str(tmp_path), "--json", str(json_path),
        ])
        assert code == 0
        assert json.loads(json_path.read_text())[0]["benchmark"] == "event-loop"
        assert os.path.exists(tmp_path / "BENCH_event-loop.json")
        assert "event-loop" in capsys.readouterr().out

    def test_check_gate_exit_codes(self, tmp_path, capsys):
        good = tmp_path / "good.json"
        bad = tmp_path / "bad.json"
        result = bench.run_benchmark("event-loop", quick=True)
        good.write_text(json.dumps(
            {"quick": bench.expectations_payload([result])}
        ))
        bad.write_text(json.dumps(
            {"quick": {"event-loop": {"events": 1, "ops": 1, "counters": {}}}}
        ))
        assert main([
            "bench", "event-loop", "--quick", "--no-trajectory",
            "--check", str(good),
        ]) == 0
        assert main([
            "bench", "event-loop", "--quick", "--no-trajectory",
            "--check", str(bad),
        ]) == 1

    def test_compare_flags_divergent_counters(self, tmp_path, capsys):
        prior = tmp_path / "prior.json"
        result = bench.run_benchmark("event-loop", quick=True)
        record = result.as_dict()
        record["events"] += 1  # simulate a semantic drift
        prior.write_text(json.dumps([record]))
        code = main([
            "bench", "event-loop", "--quick", "--no-trajectory",
            "--compare", str(prior),
        ])
        assert code == 1
        assert "COUNTERS DIVERGE" in capsys.readouterr().out

    def test_unknown_benchmark_is_a_cli_error(self, capsys):
        assert main(["bench", "nope", "--quick", "--no-trajectory"]) == 2
        assert "unknown benchmark" in capsys.readouterr().err
