"""Tests for the network, processes, latency models and fault injection."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, CrashedProcessError, UnknownProcessError
from repro.net.latency import (
    ConstantLatency,
    LogNormalLatency,
    PerLinkLatency,
    SlowdownLatency,
    UniformLatency,
    WanMatrixLatency,
    wan_latency_matrix,
)
from repro.net.network import Network
from repro.net.process import Process
from repro.net.simloop import SimLoop

from tests.conftest import make_net


class EchoServer(Process):
    """Replies to PING with PONG carrying the same payload."""

    def __init__(self, pid, network):
        super().__init__(pid, network)
        self.received = []
        self.register_handler("PING", self._on_ping)
        self.register_handler("NOTE", lambda m: self.received.append(m.payload["text"]))

    def _on_ping(self, message):
        self.reply(message, "PONG", {"echo": message.payload["n"]})


class TestLatencyModels:
    def test_constant(self):
        model = ConstantLatency(2.5)
        assert model.delay("a", "b", 0.0) == 2.5

    def test_constant_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            ConstantLatency(-1.0)

    def test_uniform_within_bounds_and_seeded(self):
        model = UniformLatency(1.0, 3.0, seed=7)
        samples = [model.delay("a", "b", 0.0) for _ in range(100)]
        assert all(1.0 <= s <= 3.0 for s in samples)
        again = UniformLatency(1.0, 3.0, seed=7)
        assert [again.delay("a", "b", 0.0) for _ in range(100)] == samples

    def test_uniform_rejects_bad_bounds(self):
        with pytest.raises(ConfigurationError):
            UniformLatency(3.0, 1.0)

    def test_lognormal_positive(self):
        model = LogNormalLatency(median=2.0, sigma=0.5, seed=1)
        assert all(model.delay("a", "b", 0.0) > 0 for _ in range(50))

    def test_lognormal_validation(self):
        with pytest.raises(ConfigurationError):
            LogNormalLatency(median=0.0)
        with pytest.raises(ConfigurationError):
            LogNormalLatency(sigma=-1.0)

    def test_per_link_uses_table_and_default(self):
        model = PerLinkLatency({("a", "b"): 5.0}, default=1.0)
        assert model.delay("a", "b", 0.0) == 5.0
        assert model.delay("b", "a", 0.0) == 1.0

    def test_per_link_rejects_negative_entries(self):
        with pytest.raises(ConfigurationError):
            PerLinkLatency({("a", "b"): -2.0})

    def test_wan_matrix_symmetric_fill(self):
        table = wan_latency_matrix(
            ["s1", "s2"],
            one_way={("eu", "us"): 40.0},
            site_of={"s1": "eu", "s2": "us"},
        )
        assert table[("s1", "s2")] == 40.0
        assert table[("s2", "s1")] == 40.0

    def test_wan_matrix_missing_entry_rejected(self):
        with pytest.raises(ConfigurationError):
            wan_latency_matrix(
                ["s1", "s2"],
                one_way={},
                site_of={"s1": "eu", "s2": "us"},
            )

    def test_wan_model_intra_site_fast(self):
        model = WanMatrixLatency(
            processes=["s1", "s2", "s3"],
            site_of={"s1": "eu", "s2": "eu", "s3": "us"},
            site_latency={("eu", "us"): 40.0},
            jitter=0.0,
        )
        assert model.delay("s1", "s2", 0.0) == 0.5
        assert model.delay("s1", "s3", 0.0) == 40.0

    def test_slowdown_applies_only_in_window_and_to_slow_processes(self):
        inner = ConstantLatency(1.0)
        model = SlowdownLatency(inner, slow=["s1"], factor=10.0, start_at=5.0, end_at=15.0)
        assert model.delay("s1", "s2", 0.0) == 1.0  # before the window
        assert model.delay("s1", "s2", 5.0) == 10.0  # slow sender
        assert model.delay("s2", "s1", 10.0) == 10.0  # slow receiver
        assert model.delay("s2", "s3", 10.0) == 1.0  # unaffected pair
        assert model.delay("s1", "s2", 15.0) == 1.0  # after the window

    def test_slowdown_rejects_factor_below_one(self):
        with pytest.raises(ConfigurationError):
            SlowdownLatency(ConstantLatency(1.0), slow=["s1"], factor=0.5)


class TestNetworkDelivery:
    def test_round_trip_uses_latency(self):
        loop, net = make_net(ConstantLatency(2.0))
        a = EchoServer("a", net)
        b = EchoServer("b", net)

        async def go():
            collector = a.request_all(["b"], "PING", {"n": 1})
            replies = await collector.wait_for_count(1)
            return replies[0].payload["echo"], loop.now

        echo, finished = loop.run_until_complete(go())
        assert echo == 1
        assert finished == 4.0  # two hops at 2.0 each

    def test_duplicate_registration_rejected(self):
        _, net = make_net()
        EchoServer("a", net)
        with pytest.raises(UnknownProcessError):
            EchoServer("a", net)

    def test_unknown_receiver_rejected(self):
        loop, net = make_net()
        a = EchoServer("a", net)
        with pytest.raises(UnknownProcessError):
            a.send("ghost", "PING", {"n": 1})

    def test_stats_count_messages(self):
        loop, net = make_net()
        a = EchoServer("a", net)
        b = EchoServer("b", net)
        a.send("b", "NOTE", {"text": "hi"})
        loop.run()
        assert net.messages_sent == 1
        assert net.messages_delivered == 1
        assert b.received == ["hi"]
        net.reset_stats()
        assert net.stats()["sent"] == 0

    def test_send_to_all(self):
        loop, net = make_net()
        a = EchoServer("a", net)
        receivers = [EchoServer(f"r{i}", net) for i in range(3)]
        a.send_to_all([r.pid for r in receivers], "NOTE", {"text": "x"})
        loop.run()
        assert all(r.received == ["x"] for r in receivers)


class TestCrashSemantics:
    def test_crashed_process_does_not_receive(self):
        loop, net = make_net()
        a = EchoServer("a", net)
        b = EchoServer("b", net)
        net.crash("b")
        a.send("b", "NOTE", {"text": "hi"})
        loop.run()
        assert b.received == []
        assert net.messages_dropped == 1

    def test_crashed_process_does_not_send(self):
        loop, net = make_net()
        a = EchoServer("a", net)
        b = EchoServer("b", net)
        a.crash()
        a.send("b", "NOTE", {"text": "hi"})
        loop.run()
        assert b.received == []

    def test_message_in_flight_to_crashed_process_dropped(self):
        loop, net = make_net(ConstantLatency(5.0))
        a = EchoServer("a", net)
        b = EchoServer("b", net)
        a.send("b", "NOTE", {"text": "hi"})
        loop.call_later(1.0, lambda: net.crash("b"))
        loop.run()
        assert b.received == []

    def test_request_from_crashed_process_raises(self):
        loop, net = make_net()
        a = EchoServer("a", net)
        EchoServer("b", net)
        a.crash()
        with pytest.raises(CrashedProcessError):
            a.request_all(["b"], "PING", {"n": 1})

    def test_crash_unknown_process_rejected(self):
        _, net = make_net()
        with pytest.raises(UnknownProcessError):
            net.crash("ghost")


class TestPartitions:
    def test_partition_holds_and_heal_releases(self):
        loop, net = make_net(ConstantLatency(1.0))
        a = EchoServer("a", net)
        b = EchoServer("b", net)
        net.partition([["a"], ["b"]])
        a.send("b", "NOTE", {"text": "trapped"})
        loop.run()
        assert b.received == []
        net.heal()
        loop.run()
        assert b.received == ["trapped"]

    def test_partition_allows_intra_group_traffic(self):
        loop, net = make_net()
        a = EchoServer("a", net)
        b = EchoServer("b", net)
        c = EchoServer("c", net)
        net.partition([["a", "b"], ["c"]])
        a.send("b", "NOTE", {"text": "same side"})
        loop.run()
        assert b.received == ["same side"]

    def test_unlisted_processes_form_implicit_group(self):
        loop, net = make_net()
        a = EchoServer("a", net)
        b = EchoServer("b", net)
        c = EchoServer("c", net)
        net.partition([["a"]])
        b.send("c", "NOTE", {"text": "both implicit"})
        a.send("b", "NOTE", {"text": "cross"})
        loop.run()
        assert c.received == ["both implicit"]
        assert b.received == []


class TestResponseCollector:
    def test_wait_for_count_resolves_with_partial_replies(self):
        loop, net = make_net(ConstantLatency(1.0))
        client = Process("client", net)
        servers = [EchoServer(f"s{i}", net) for i in range(1, 6)]
        net.crash("s5")

        async def go():
            collector = client.request_all([s.pid for s in servers], "PING", {"n": 9})
            replies = await collector.wait_for_count(4)
            return sorted(r.sender for r in replies)

        assert loop.run_until_complete(go()) == ["s1", "s2", "s3", "s4"]

    def test_wait_until_custom_predicate(self):
        loop, net = make_net(ConstantLatency(1.0))
        client = Process("client", net)
        servers = [EchoServer(f"s{i}", net) for i in range(1, 4)]

        async def go():
            collector = client.request_all([s.pid for s in servers], "PING", {"n": 0})
            replies = await collector.wait_until(
                lambda rs: any(r.sender == "s2" for r in rs), name="s2-replied"
            )
            return [r.sender for r in replies]

        assert "s2" in loop.run_until_complete(go())

    def test_late_replies_still_recorded(self):
        loop, net = make_net(UniformLatency(0.5, 3.0, seed=11))
        client = Process("client", net)
        servers = [EchoServer(f"s{i}", net) for i in range(1, 6)]

        async def go():
            collector = client.request_all([s.pid for s in servers], "PING", {"n": 0})
            await collector.wait_for_count(2)
            return collector

        collector = loop.run_until_complete(go())
        loop.run()
        assert len(collector.responses) == 5


class TestUnhandledMessages:
    def test_unhandled_kind_is_ignored_by_default(self):
        loop, net = make_net()
        a = EchoServer("a", net)
        b = EchoServer("b", net)
        a.send("b", "UNKNOWN_KIND", {})
        loop.run()  # must not raise
        assert b.received == []
