"""Tests for the static ABD baseline and the simplified reconfigurable storage."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, DeadlockError
from repro.net.latency import ConstantLatency, PerLinkLatency, UniformLatency
from repro.net.network import Network
from repro.net.simloop import SimLoop, gather
from repro.quorum.majority import MajorityQuorumSystem
from repro.quorum.weighted import WeightedMajorityQuorumSystem
from repro.storage.abd import StaticQuorumStorageClient, StaticQuorumStorageServer
from repro.storage.reconfigurable import (
    ReconfigurableStorageClient,
    ReconfigurableStorageServer,
)
from repro.types import server_set

from tests.conftest import check_atomic_history, history_from_records


def build_static(n, weighted_weights=None, latency=None, clients=2):
    loop = SimLoop()
    network = Network(loop, latency or ConstantLatency(1.0))
    servers = {pid: StaticQuorumStorageServer(pid, network) for pid in server_set(n)}
    if weighted_weights is None:
        quorum_system = MajorityQuorumSystem(server_set(n))
    else:
        quorum_system = WeightedMajorityQuorumSystem(weighted_weights)
    client_map = {
        f"c{i}": StaticQuorumStorageClient(f"c{i}", network, quorum_system)
        for i in range(1, clients + 1)
    }
    return loop, network, client_map


class TestStaticABD:
    def test_write_then_read(self):
        loop, _, clients = build_static(5)

        async def go():
            await clients["c1"].write("payload")
            return await clients["c2"].read()

        assert loop.run_until_complete(go()) == "payload"

    def test_read_of_unwritten_register(self):
        loop, _, clients = build_static(3)
        assert loop.run_until_complete(clients["c1"].read()) is None

    def test_write_none_rejected(self):
        loop, _, clients = build_static(3)

        async def go():
            await clients["c1"].write(None)

        with pytest.raises(ConfigurationError):
            loop.run_until_complete(go())

    def test_survives_minority_crashes(self):
        loop, network, clients = build_static(5)

        async def go():
            await clients["c1"].write("kept")
            network.crash("s4")
            network.crash("s5")
            return await clients["c2"].read()

        assert loop.run_until_complete(go()) == "kept"

    def test_blocks_on_majority_crashes(self):
        loop, network, clients = build_static(5)

        async def go():
            network.crash("s3")
            network.crash("s4")
            network.crash("s5")
            await clients["c1"].write("nope")

        with pytest.raises(DeadlockError):
            loop.run_until_complete(go())

    def test_concurrent_history_is_atomic(self):
        loop, _, clients = build_static(
            5, latency=UniformLatency(0.5, 2.0, seed=13), clients=3
        )

        async def worker(client, prefix):
            for index in range(5):
                await client.write(f"{prefix}{index}")
                await client.read()

        loop.run_until_complete(
            gather(loop, [worker(clients[f"c{i}"], f"w{i}-") for i in range(1, 4)])
        )
        entries = []
        for client in clients.values():
            entries.extend(history_from_records(client.history))
        assert check_atomic_history(entries) == []

    def test_weighted_static_quorum_uses_fast_heavy_servers(self):
        """With the weight on s1..s3, those three servers suffice."""
        weights = {"s1": 2.0, "s2": 2.0, "s3": 2.0, "s4": 0.5, "s5": 0.5}
        loop, network, clients = build_static(5, weighted_weights=weights)
        network.crash("s4")
        network.crash("s5")

        async def go():
            await clients["c1"].write("weighted")
            return await clients["c2"].read()

        assert loop.run_until_complete(go()) == "weighted"

    def test_majority_variant_blocks_in_same_scenario(self):
        loop, network, clients = build_static(5)
        network.crash("s4")
        network.crash("s5")
        network.crash("s3")

        async def go():
            await clients["c1"].write("x")

        with pytest.raises(DeadlockError):
            loop.run_until_complete(go())

    def test_latency_follows_slowest_quorum_member(self):
        table = {("c1", f"s{i}"): float(i) for i in range(1, 6)}
        table.update({(f"s{i}", "c1"): 0.0 for i in range(1, 6)})
        loop, _, clients = build_static(
            5, latency=PerLinkLatency(table, default=0.0), clients=1
        )

        async def go():
            await clients["c1"].write("timed")

        loop.run_until_complete(go())
        record = clients["c1"].history[0]
        # Two phases, each waits for the 3rd-fastest server (RTT 3.0).
        assert record.latency == pytest.approx(6.0)


def build_reconfigurable(initial_n, all_n, latency=None, clients=2):
    loop = SimLoop()
    network = Network(loop, latency or ConstantLatency(1.0))
    everyone = server_set(all_n)
    initial = server_set(initial_n)
    servers = {
        pid: ReconfigurableStorageServer(pid, network, initial) for pid in everyone
    }
    client_map = {
        f"c{i}": ReconfigurableStorageClient(f"c{i}", network, initial, everyone)
        for i in range(1, clients + 1)
    }
    return loop, network, servers, client_map


class TestReconfigurableStorage:
    def test_basic_read_write(self):
        loop, _, _, clients = build_reconfigurable(3, 3)

        async def go():
            await clients["c1"].write("base")
            return await clients["c2"].read()

        assert loop.run_until_complete(go()) == "base"

    def test_reconfigure_adds_servers_and_preserves_value(self):
        loop, _, servers, clients = build_reconfigurable(3, 5)

        async def go():
            await clients["c1"].write("carried-over")
            await clients["c1"].reconfigure(server_set(5))
            return await clients["c2"].read()

        assert loop.run_until_complete(go()) == "carried-over"
        assert clients["c1"].pending_config_count == 2

    def test_other_clients_learn_new_config_through_replies(self):
        loop, _, _, clients = build_reconfigurable(3, 5)

        async def go():
            await clients["c1"].write("v")
            await clients["c1"].reconfigure(server_set(5))
            await clients["c2"].read()
            return clients["c2"].known_configs

        configs = loop.run_until_complete(go())
        assert frozenset(server_set(5)) in configs

    def test_liveness_depends_on_every_pending_config(self):
        """The availability contrast of Section VIII: after proposing a new
        configuration, losing its majority blocks the store even though the
        *old* configuration is fully alive."""
        loop, network, _, clients = build_reconfigurable(3, 7)

        async def go():
            await clients["c1"].write("v")
            await clients["c1"].reconfigure(server_set(7))
            # Crash a majority of the *new* configuration (s4..s7), while the
            # old configuration {s1,s2,s3} stays entirely correct.
            for pid in ("s4", "s5", "s6", "s7"):
                network.crash(pid)
            await clients["c1"].read()

        with pytest.raises(DeadlockError):
            loop.run_until_complete(go())

    def test_old_config_crashes_also_block(self):
        loop, network, _, clients = build_reconfigurable(3, 5)

        async def go():
            await clients["c1"].reconfigure(server_set(5))
            network.crash("s1")
            network.crash("s2")
            await clients["c1"].read()

        with pytest.raises(DeadlockError):
            loop.run_until_complete(go())

    def test_unknown_server_in_reconfig_rejected(self):
        loop, _, _, clients = build_reconfigurable(3, 3)

        async def go():
            await clients["c1"].reconfigure(("s1", "s2", "s9"))

        with pytest.raises(ConfigurationError):
            loop.run_until_complete(go())

    def test_history_remains_atomic_across_reconfiguration(self):
        loop, _, _, clients = build_reconfigurable(
            3, 5, latency=UniformLatency(0.5, 1.5, seed=21), clients=3
        )

        async def writer(client, prefix):
            for index in range(4):
                await client.write(f"{prefix}{index}")

        async def reconfigurer(client):
            await loop.sleep(2.0)
            await client.reconfigure(server_set(5))

        async def reader(client):
            for _ in range(6):
                await client.read()

        loop.run_until_complete(
            gather(
                loop,
                [
                    writer(clients["c1"], "a"),
                    reconfigurer(clients["c2"]),
                    reader(clients["c3"]),
                ],
            )
        )
        entries = []
        for client in clients.values():
            entries.extend(history_from_records(client.history))
        assert check_atomic_history(entries) == []
