"""Tests for key-sharded storage: routing, metrics, spec integration, scenarios.

The satellite requirements this file pins down:

* shard routing is deterministic under fixed seeds (stable hash, identical
  results run-to-run and across serial/parallel executions);
* zipfian keys yield measurably higher shard-load variance than uniform keys
  at equal operation counts;
* per-shard state is genuinely independent (weights, transfers, atomicity).
"""

from __future__ import annotations

import pytest

from tests.conftest import check_atomic_history, history_from_records
from repro.core.spec import SystemConfig
from repro.errors import ConfigurationError
from repro.experiments import (
    ClusterSpec,
    KeySpec,
    LatencySpec,
    ScenarioSpec,
    TransferEvent,
    WorkloadSpec,
    execute_many,
    expand_grid,
    get_scenario,
    run_spec,
)
from repro.sim.cluster import build_sharded_cluster
from repro.sim.metrics import imbalance_summary, summarize_shard_loads
from repro.sim.runner import run_workload
from repro.storage.sharded import (
    base_process_name,
    expand_process_names,
    shard_config,
    shard_factory,
    shard_for_key,
    shard_process_name,
)
from repro.workloads.arrivals import ClosedLoopArrivals
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.keys import UniformKeys, ZipfianKeys


# ---------------------------------------------------------------------------
# Routing: stable, deterministic, total
# ---------------------------------------------------------------------------


def test_shard_for_key_is_stable_across_runs():
    # Golden values: the FNV-1a routing must never drift between versions or
    # processes, otherwise checked-in baselines and replayed traces break.
    assert shard_for_key("k1", 4) == 3
    assert shard_for_key("k2", 4) == 2
    assert shard_for_key("k1", 2) == 1
    assert [shard_for_key(f"k{i}", 2) for i in (9, 10, 11, 12)] == [0, 1, 1, 1]


def test_shard_for_key_none_and_single_shard():
    assert shard_for_key(None, 8) == 0
    assert shard_for_key("anything", 1) == 0


def test_shard_for_key_range_and_errors():
    for shards in (2, 3, 5, 16):
        for i in range(1, 200):
            assert 0 <= shard_for_key(f"k{i}", shards) < shards
    with pytest.raises(ConfigurationError):
        shard_for_key("k1", 0)


def test_shard_process_names_round_trip():
    assert shard_process_name("s1", 3) == "s1#3"
    assert base_process_name("s1#3") == "s1"
    assert base_process_name("s1") == "s1"
    with pytest.raises(ConfigurationError):
        shard_process_name("s1", -1)


def test_shard_config_renames_and_isolates():
    template = SystemConfig.uniform(3, f=1)
    renamed = shard_config(template, 2)
    assert renamed.servers == ("s1#2", "s2#2", "s3#2")
    assert renamed.f == template.f
    assert renamed.total_initial_weight == template.total_initial_weight
    # The template itself is untouched.
    assert template.servers == ("s1", "s2", "s3")


def test_unknown_shard_flavour_rejected():
    with pytest.raises(ConfigurationError):
        shard_factory("paxos-flavoured")


# ---------------------------------------------------------------------------
# The keyed facade: per-key reads/writes land on the owning shard
# ---------------------------------------------------------------------------


def _keys_on_distinct_shards(shards: int):
    """Two key names living on different shards (search is deterministic)."""
    first = "k1"
    target = shard_for_key(first, shards)
    for i in range(2, 100):
        candidate = f"k{i}"
        if shard_for_key(candidate, shards) != target:
            return first, candidate
    raise AssertionError("no key pair on distinct shards found")


@pytest.mark.parametrize(
    "flavour",
    ["dynamic-weighted", "static-majority", "static-weighted", "reconfigurable"],
)
def test_sharded_store_isolates_keys_per_flavour(flavour):
    cluster = build_sharded_cluster(
        SystemConfig.uniform(3, f=1), shards=3, client_count=1, flavour=flavour
    )
    client = cluster.any_client()
    key_a, key_b = _keys_on_distinct_shards(3)

    async def run():
        await client.write("alpha", key=key_a)
        await client.write("beta", key=key_b)
        return await client.read(key=key_a), await client.read(key=key_b)

    value_a, value_b = cluster.loop.run_until_complete(run())
    assert (value_a, value_b) == ("alpha", "beta")
    # The placements recorded by the facade match the routing function.
    assert [entry.shard for entry in client.sharded_history] == [
        shard_for_key(key, 3) for key in (key_a, key_b, key_a, key_b)
    ]


def test_shards_are_independent_registers():
    # A write through one shard must be invisible to the other shard's
    # register: reading a key of an untouched shard returns the initial None.
    cluster = build_sharded_cluster(
        SystemConfig.uniform(3, f=1), shards=2, client_count=1
    )
    client = cluster.any_client()
    key_a, key_b = _keys_on_distinct_shards(2)

    async def run():
        await client.write("only-here", key=key_a)
        return await client.read(key=key_b)

    assert cluster.loop.run_until_complete(run()) is None


def test_sharded_store_rejects_concurrent_operations():
    # A logical client is sequential (the paper's model and the runner's
    # contract); concurrent ops on one facade would make per-shard record
    # attribution ambiguous, so the facade refuses loudly.
    cluster = build_sharded_cluster(
        SystemConfig.uniform(3, f=1), shards=2, client_count=1
    )
    client = cluster.any_client()

    async def run():
        first = cluster.loop.create_task(client.write("a", key="k1"))
        await cluster.loop.sleep(0.1)  # let the write begin its phases
        with pytest.raises(ConfigurationError):
            await client.read(key="k2")
        await first

    cluster.loop.run_until_complete(run())
    # The completed write was recorded; the rejected read was not.
    assert [entry.record.kind for entry in client.sharded_history] == ["write"]


def test_sharded_history_per_shard_is_atomic():
    cluster = build_sharded_cluster(
        SystemConfig.uniform(3, f=1), shards=2, client_count=3
    )
    generator = WorkloadGenerator(
        keys=ZipfianKeys(space=32, s=1.1), arrivals=ClosedLoopArrivals(0.5)
    )
    workload = generator.generate(tuple(cluster.clients), 15, seed=5)
    run_workload(cluster, workload)
    for shard in range(2):
        records = [
            entry.record
            for client in cluster.clients.values()
            for entry in client.sharded_history
            if entry.shard == shard
        ]
        assert records, f"shard {shard} served nothing"
        assert check_atomic_history(history_from_records(records)) == []


# ---------------------------------------------------------------------------
# Imbalance metrics
# ---------------------------------------------------------------------------


def test_imbalance_summary_math():
    summary = imbalance_summary([30, 10, 10, 10])
    assert summary.shards == 4
    assert summary.total_operations == 60
    assert summary.max_load == 30
    assert summary.hottest_shard == 0
    assert summary.hottest_share == pytest.approx(0.5)
    assert summary.fair_share == pytest.approx(0.25)
    assert summary.imbalance_ratio == pytest.approx(2.0)
    assert summary.load_variance == pytest.approx(75.0)


def test_imbalance_summary_tie_breaks_to_lowest_index():
    # Equal maxima resolve to the smallest shard id — the (load, -index)
    # key documented on imbalance_summary.
    assert imbalance_summary([7, 9, 9, 3]).hottest_shard == 1
    assert imbalance_summary([5, 5, 5]).hottest_shard == 0
    assert imbalance_summary([0, 0]).hottest_shard == 0
    # A strictly larger load at a higher index still wins outright.
    assert imbalance_summary([1, 2, 8]).hottest_shard == 2


def test_imbalance_summary_handles_zero_operations():
    summary = imbalance_summary([0, 0])
    assert summary.hottest_share == 0.0
    assert summary.imbalance_ratio == 1.0
    assert summary.load_cv == 0.0


def test_summarize_shard_loads_lists_idle_shards_and_validates():
    summaries, imbalance = summarize_shard_loads(
        [(0, "read", 2.0), (0, "write", 3.0)], shards=3
    )
    assert [s.operations for s in summaries] == [2, 0, 0]
    assert summaries[1].read_latency is None
    assert imbalance.hottest_shard == 0
    with pytest.raises(ConfigurationError):
        summarize_shard_loads([(5, "read", 1.0)], shards=2)


def test_zipfian_routes_more_variance_than_uniform_at_equal_op_counts():
    # Pure routing statistics, no simulation: at identical operation counts
    # the zipfian key stream must concentrate shard load measurably harder
    # than the uniform stream — on every seed we try.
    shards = 4
    for seed in (0, 1, 2):
        variances = {}
        for name, keys in (
            ("zipfian", ZipfianKeys(space=256, s=1.2)),
            ("uniform", UniformKeys(space=256)),
        ):
            generator = WorkloadGenerator(keys=keys, arrivals=ClosedLoopArrivals(1.0))
            workload = generator.generate(("c1", "c2", "c3"), 40, seed=seed)
            loads = [0] * shards
            for op in workload.operations:
                loads[shard_for_key(op.key, shards)] += 1
            assert sum(loads) == 120
            variances[name] = imbalance_summary(loads).load_variance
        assert variances["zipfian"] > 2.0 * variances["uniform"], (seed, variances)


# ---------------------------------------------------------------------------
# Spec integration: the cluster.shards knob
# ---------------------------------------------------------------------------


def _sharded_spec(shards: int = 3, kind: str = "zipfian") -> ScenarioSpec:
    return ScenarioSpec(
        name="sharded-test",
        cluster=ClusterSpec(n=3, f=1, client_count=2, shards=shards),
        workload=WorkloadSpec(
            operations_per_client=10, keys=KeySpec(kind=kind, space=64, zipf_s=1.3)
        ),
        seed=9,
    )


def test_run_spec_sharded_reports_breakdown_and_weights():
    result = run_spec(_sharded_spec())
    assert len(result["shards"]) == 3
    assert sum(entry["operations"] for entry in result["shards"]) == result["operations"]
    assert result["imbalance"]["shards"] == 3
    assert set(result["shard_weights"]) == {"0", "1", "2"}
    for weights in result["shard_weights"].values():
        assert set(weights) == {"s1", "s2", "s3"}
    # Unsharded runs keep the flat result shape (no per-shard blocks).
    flat = run_spec(_sharded_spec(shards=1))
    assert "shards" not in flat and "imbalance" not in flat and "weights" in flat


def test_run_spec_sharded_routing_is_deterministic():
    first = run_spec(_sharded_spec())
    second = run_spec(_sharded_spec())
    assert first == second


def test_cluster_shards_is_sweepable_and_parallel_safe():
    runs = expand_grid(
        "quickstart",
        grid={"cluster.shards": [1, 2]},
        base={"workload.operations_per_client": 3},
    )
    serial = execute_many(runs, workers=1)
    parallel = execute_many(runs, workers=2)
    assert [r.result for r in serial] == [r.result for r in parallel]
    sharded = next(
        r.result for r in serial if dict(r.params)["cluster.shards"] == 2
    )
    assert sharded["imbalance"]["shards"] == 2


def test_sharded_transfer_targets_one_shard_only():
    spec = _sharded_spec(shards=2)
    spec = ScenarioSpec(
        name=spec.name,
        cluster=spec.cluster,
        workload=spec.workload,
        transfers=(TransferEvent(at=2.0, source="s1", target="s2", delta=0.2, shard=1),),
        seed=spec.seed,
    )
    result = run_spec(spec)
    assert result["transfers"][0]["effective"] is True
    assert result["transfers"][0]["shard"] == 1
    assert result["shard_weights"]["1"]["s1"] == pytest.approx(0.8)
    assert result["shard_weights"]["1"]["s2"] == pytest.approx(1.2)
    # The untouched shard keeps its initial weights.
    assert result["shard_weights"]["0"] == {"s1": 1.0, "s2": 1.0, "s3": 1.0}


def test_sharded_transfer_out_of_range_rejected():
    spec = _sharded_spec(shards=2)
    spec = ScenarioSpec(
        name=spec.name,
        cluster=spec.cluster,
        workload=spec.workload,
        transfers=(TransferEvent(at=2.0, source="s1", target="s2", delta=0.2, shard=5),),
    )
    with pytest.raises(ConfigurationError):
        run_spec(spec)


def test_expand_process_names_canonical_vs_qualified():
    # Canonical names fan out to every shard (co-located machine model);
    # qualified names pass through and target one shard's instance.
    assert expand_process_names(("s1",), 3) == ("s1#0", "s1#1", "s1#2")
    assert expand_process_names(("s1#2", "s4"), 2) == ("s1#2", "s4#0", "s4#1")
    assert expand_process_names(("s1", "c2"), 1) == ("s1", "c2")
    with pytest.raises(ConfigurationError):
        expand_process_names(("s1",), 0)


def test_sharded_crash_schedule_with_canonical_names():
    # Regression: `failures.crashes` naming canonical servers must keep
    # working when the scenario is swept over cluster.shards — the crash
    # takes that server's instance in every shard, and the store stays live
    # as long as each shard loses at most f servers.
    result = get_scenario("crash-resilience").execute(
        {"cluster.shards": 2, "workload.operations_per_client": 5}
    )
    assert result["operations"] == 10
    assert result["imbalance"]["shards"] == 2
    # Both crashed machines are gone from every shard's surviving view, so
    # the weight report comes from a surviving server of each shard.
    for weights in result["shard_weights"].values():
        assert set(weights) == {"s1", "s2", "s3", "s4", "s5"}


def test_sharded_latency_slow_with_canonical_names_degrades():
    # Regression: latency.slow=("s1",...) must not silently stop degrading
    # when the cluster shards — canonical names expand to every shard.
    def median_read(slow):
        spec = ScenarioSpec(
            name="slow-test",
            cluster=ClusterSpec(n=3, f=1, client_count=2, shards=2),
            workload=WorkloadSpec(operations_per_client=6),
            latency=LatencySpec(kind="constant", value=1.0, slow=slow,
                                slow_factor=10.0),
            seed=4,
        )
        return run_spec(spec)["read_latency"]["median"]

    degraded = median_read(("s1", "s2"))
    healthy = median_read(())
    assert degraded > 2.0 * healthy


def test_sharded_latency_slow_qualified_name_targets_one_shard():
    model = LatencySpec(
        kind="constant", value=1.0, slow=("s1#0",), slow_factor=8.0
    ).build(shards=4)
    assert model.slow == frozenset({"s1#0"})
    expanded = LatencySpec(
        kind="constant", value=1.0, slow=("s1",), slow_factor=8.0
    ).build(shards=2)
    assert expanded.slow == frozenset({"s1#0", "s1#1"})


def test_invalid_shard_counts_rejected():
    with pytest.raises(ConfigurationError):
        run_spec(_sharded_spec(shards=0))
    with pytest.raises(ConfigurationError):
        build_sharded_cluster(SystemConfig.uniform(3, f=1), shards=0)


# ---------------------------------------------------------------------------
# The catalogue scenarios (the acceptance claims, pinned as tests)
# ---------------------------------------------------------------------------


def test_sharded_zipfian_imbalance_scenario_claims():
    result = get_scenario("sharded-zipfian-imbalance").execute()
    fair = result["fair_share"]
    rows = {row["keys"]: row for row in result["rows"]}
    # Equal op counts in both runs.
    assert sum(rows["zipfian"]["shard_loads"]) == sum(rows["uniform"]["shard_loads"])
    # Zipfian keys concentrate load well above the fair share ...
    assert rows["zipfian"]["hottest_share"] > 1.5 * fair
    # ... while uniform keys stay close to it ...
    assert rows["uniform"]["hottest_share"] < 1.35 * fair
    # ... and the skewed run is strictly more imbalanced on every axis.
    assert rows["zipfian"]["hottest_share"] > rows["uniform"]["hottest_share"]
    assert rows["zipfian"]["load_variance"] > rows["uniform"]["load_variance"]


def test_sharded_hotspot_reassignment_scenario_claims():
    result = get_scenario("sharded-hotspot-reassignment").execute()
    hot_before = result["hot_shard_before"]
    hot_after = result["hot_shard_after"]
    # The hotspot really moves to a different shard ...
    assert hot_before != hot_after
    loads_after = result["shard_loads_after_shift"]
    assert loads_after[hot_after] == max(loads_after)
    # ... and only the newly-hot (and slowed) shard's controllers act:
    transfers = result["transfers_attempted_by_shard"]
    assert transfers[str(hot_after)] > 0
    cold_shards = [s for s in transfers if s != str(hot_after)]
    for shard in cold_shards:
        assert transfers[shard] == 0
        assert all(
            weight == pytest.approx(1.0)
            for weight in result["shard_weights"][shard].values()
        )
    # The slowed servers shed weight to their healthy shard-mates.
    assert result["slowed_servers_weight"] < 2.0
    total = sum(result["shard_weights"][str(hot_after)].values())
    assert total == pytest.approx(5.0)
