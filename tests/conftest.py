"""Shared fixtures and helpers for the test-suite."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

import pytest

from repro.core.spec import SystemConfig
from repro.core.storage import OperationRecord
from repro.net.latency import ConstantLatency, LatencyModel, UniformLatency
from repro.net.network import Network
from repro.net.simloop import SimLoop
from repro.types import Tag


@pytest.fixture
def loop() -> SimLoop:
    return SimLoop()


@pytest.fixture
def network(loop: SimLoop) -> Network:
    return Network(loop, ConstantLatency(1.0))


def make_net(latency: Optional[LatencyModel] = None) -> Tuple[SimLoop, Network]:
    """Convenience constructor used by tests that need several networks."""
    loop = SimLoop()
    return loop, Network(loop, latency or ConstantLatency(1.0))


def jittery_net(seed: int = 0, low: float = 0.5, high: float = 2.5) -> Tuple[SimLoop, Network]:
    loop = SimLoop()
    return loop, Network(loop, UniformLatency(low, high, seed=seed))


# ---------------------------------------------------------------------------
# Atomicity (linearizability) checking for tag-carrying register histories
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class HistoryEntry:
    """One completed operation with its real-time interval and tag."""

    kind: str
    value: Any
    tag: Tag
    started_at: float
    completed_at: float


def history_from_records(records: Sequence[OperationRecord]) -> List[HistoryEntry]:
    return [
        HistoryEntry(
            kind=record.kind,
            value=record.value,
            tag=record.tag,
            started_at=record.started_at,
            completed_at=record.completed_at,
        )
        for record in records
    ]


def check_atomic_history(entries: Sequence[HistoryEntry]) -> List[str]:
    """Return a list of atomicity violations (empty means the history is atomic).

    The storage protocols expose the tag each operation acted on, which makes
    the check direct (Definition 6 / Lamport's atomic register):

    * tags must be consistent with real time: if operation ``a`` completes
      before operation ``b`` starts, then ``tag(a) <= tag(b)``; and if ``a``
      is a *write* (which installs a new tag), ``tag(a) <= tag(b)`` must be
      strict for later writes (their tags are unique by construction).
    * two operations with the same tag must have observed the same value.
    """
    problems: List[str] = []
    by_tag = {}
    for entry in entries:
        if entry.tag in by_tag and by_tag[entry.tag] != entry.value:
            problems.append(
                f"tag {entry.tag} associated with two values: "
                f"{by_tag[entry.tag]!r} and {entry.value!r}"
            )
        by_tag.setdefault(entry.tag, entry.value)

    ordered = sorted(entries, key=lambda e: (e.completed_at, e.started_at))
    for i, first in enumerate(ordered):
        for second in ordered[i + 1 :]:
            if first.completed_at <= second.started_at and second.tag < first.tag:
                problems.append(
                    f"real-time order violated: {first.kind}({first.value!r}, tag={first.tag}) "
                    f"completed at {first.completed_at} before "
                    f"{second.kind}({second.value!r}, tag={second.tag}) started at "
                    f"{second.started_at}, but the later operation has a smaller tag"
                )
    # Unique written values: every write installs a distinct tag.
    write_tags = [e.tag for e in entries if e.kind == "write"]
    if len(write_tags) != len(set(write_tags)):
        problems.append("two writes share a tag")
    return problems


def uniform_config(n: int, f: Optional[int] = None) -> SystemConfig:
    return SystemConfig.uniform(n, f=f)
