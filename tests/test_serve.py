"""Serving-layer tests: schemas, service, routes, HTTP round-trips, resume.

The byte-identity contract is asserted at every level: a job's streamed
results must equal the file the equivalent ``python -m repro run`` /
``sweep --jsonl`` invocation writes — including after cancellation +
resubmission and after a ``kill -9`` mid-sweep followed by a restart on the
same jobs directory.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time

import pytest

from repro.errors import ConfigurationError
from repro.experiments.cli import main
from repro.experiments.registry import catalogue_payload
from repro.experiments.results import compare_payloads, load_payload
from repro.serve.app import ExperimentServer
from repro.serve.client import ServeClient, ServeClientError
from repro.serve.routes import dispatch
from repro.serve.schemas import JobRequest, error_payload
from repro.serve.service import (
    ExperimentService,
    JobStateError,
    QueueFullError,
    UnknownJobError,
    expand_runs,
)

FAST = {"workload.operations_per_client": 2}
REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
QUICKSTART_SPEC = os.path.join(REPO, "examples", "specs", "quickstart.json")


def wait_for(predicate, timeout=120.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() >= deadline:
            raise AssertionError("condition not reached in time")
        time.sleep(interval)


def cli_sweep_bytes(tmp_path, name, argv):
    """The reference bytes: a direct `sweep ... --jsonl` invocation."""
    path = tmp_path / name
    assert main(["sweep", *argv, "--jsonl", str(path), "--quiet",
                 "--no-progress"]) == 0
    return path.read_bytes()


@pytest.fixture
def service(tmp_path):
    svc = ExperimentService(str(tmp_path / "jobs"), workers=1)
    svc.start()
    yield svc
    svc.shutdown()


@pytest.fixture
def http_client(service):
    server = ExperimentServer(("127.0.0.1", 0), service, quiet=True)
    thread = threading.Thread(
        target=server.serve_forever, kwargs={"poll_interval": 0.05}, daemon=True
    )
    thread.start()
    yield ServeClient(f"http://127.0.0.1:{server.server_address[1]}")
    server.shutdown()
    server.server_close()


class TestSchemas:
    def test_unknown_key_rejected_with_path(self):
        with pytest.raises(ConfigurationError) as excinfo:
            JobRequest.from_dict({"scenario": "quickstart", "bogus": 1})
        assert excinfo.value.path == "bogus"
        assert "bogus" in str(excinfo.value)

    @pytest.mark.parametrize("body,path", [
        ({"kind": "walk", "scenario": "quickstart"}, "kind"),
        ({}, "scenario"),
        ({"scenario": "a", "spec": {"name": "a"}}, "scenario"),
        ({"scenario": "a", "grid": {"seed": [1]}}, "kind"),
        ({"kind": "sweep", "scenario": "a", "grid": {"seed": 3}}, "grid.seed"),
        ({"kind": "sweep", "scenario": "a", "sample": 0}, "sample"),
        ({"kind": "sweep", "scenario": "a", "sample": 2,
          "sample_method": "sobol"}, "sample_method"),
        ({"scenario": "a", "workers": 0}, "workers"),
        ({"scenario": "a", "run_timeout": 0}, "run_timeout"),
        ({"scenario": "a", "retry": 0}, "retry"),
    ])
    def test_validation_paths(self, body, path):
        with pytest.raises(ConfigurationError) as excinfo:
            JobRequest.from_dict(body).validate()
        assert excinfo.value.path == path

    def test_error_payload_shape(self):
        payload = error_payload(ConfigurationError("boom", path="a.b"))
        assert payload == {"message": "boom", "type": "ConfigurationError",
                           "path": "a.b"}

    def test_expand_runs_matches_cli_expansion(self):
        request = JobRequest.from_dict({
            "kind": "sweep", "scenario": "quickstart",
            "grid": {"cluster.n": [4, 5]}, "seeds": [0, 1],
        }).validate()
        runs = expand_runs(request, "quickstart")
        assert [run.params_dict["cluster.n"] for run in runs] == [4, 4, 5, 5]
        assert [run.params_dict["seed"] for run in runs] == [0, 1, 0, 1]


class TestStructuredErrors:
    def test_spec_override_error_carries_path(self):
        from repro.experiments.spec import ScenarioSpec
        spec = ScenarioSpec.from_dict(json.load(open(QUICKSTART_SPEC)))
        with pytest.raises(ConfigurationError) as excinfo:
            spec.with_overrides({"cluster.bogus": 1})
        assert excinfo.value.path == "cluster.bogus"

    def test_section_validation_attaches_section_path(self):
        from repro.experiments.spec import ScenarioSpec
        data = json.load(open(QUICKSTART_SPEC))
        data["workload"] = dict(data["workload"], operations_per_client=-1)
        with pytest.raises(ConfigurationError) as excinfo:
            ScenarioSpec.from_dict(data).validate()
        assert excinfo.value.path == "workload"

    def test_cli_prints_path_hint(self, tmp_path, capsys):
        data = json.load(open(QUICKSTART_SPEC))
        data["workload"] = dict(data["workload"], operations_per_client=-1)
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps(data))
        assert main(["run", "--spec", str(bad)]) == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert "at: workload" in err

    def test_message_unchanged_by_path(self):
        error = ConfigurationError("plain message", path="x.y")
        assert str(error) == "plain message"


class TestCatalogue:
    def test_list_json_matches_scenarios_endpoint(self, capsys):
        assert main(["list", "--json"]) == 0
        cli_payload = json.loads(capsys.readouterr().out)
        assert cli_payload == catalogue_payload()
        entry = {item["name"]: item for item in cli_payload}["quickstart"]
        assert "cluster.n" in entry["sweepable"]
        assert entry["sweepable"] == sorted(entry["parameters"])

    def test_get_scenarios_over_http(self, http_client):
        payload = http_client.scenarios()
        assert payload == catalogue_payload()


class TestServiceExecution:
    def test_run_job_byte_identical_to_cli(self, service, tmp_path):
        request = JobRequest.from_dict(
            {"kind": "run", "scenario": "quickstart", "params": FAST}
        )
        job = service.submit(request)
        assert job.finished_event.wait(120)
        assert job.state == "done"
        want = cli_sweep_bytes(
            tmp_path, "direct.jsonl",
            ["quickstart", "-p", "workload.operations_per_client=2"],
        )
        assert job.results_path and open(job.results_path, "rb").read() == want

    def test_concurrent_jobs_share_service(self, tmp_path):
        service = ExperimentService(
            str(tmp_path / "jobs"), workers=1, job_concurrency=2
        )
        service.start()
        try:
            jobs = [
                service.submit(JobRequest.from_dict({
                    "kind": "sweep", "scenario": "quickstart",
                    "params": FAST, "seeds": [seed, seed + 10],
                }))
                for seed in (0, 1)
            ]
            for job in jobs:
                assert job.finished_event.wait(120)
                assert job.state == "done"
                assert job.done_runs == 2
            payloads = [load_payload(job.results_path) for job in jobs]
            assert {entry["params"]["seed"] for entry in payloads[0]} == {0, 10}
            assert {entry["params"]["seed"] for entry in payloads[1]} == {1, 11}
        finally:
            service.shutdown()

    def test_queue_limit_rejects_submissions(self, tmp_path):
        service = ExperimentService(str(tmp_path / "jobs"), queue_limit=1)
        # Not started: jobs stay queued, so the limit is hit deterministically.
        service.submit(JobRequest.from_dict(
            {"kind": "run", "scenario": "quickstart", "params": FAST}))
        with pytest.raises(QueueFullError):
            service.submit(JobRequest.from_dict(
                {"kind": "run", "scenario": "quickstart", "params": FAST}))
        service.shutdown()

    def test_unknown_parameter_rejected_with_path(self, service):
        with pytest.raises(ConfigurationError) as excinfo:
            service.submit(JobRequest.from_dict(
                {"kind": "run", "scenario": "quickstart",
                 "params": {"cluster.bogus": 3}}))
        assert excinfo.value.path == "params.cluster.bogus"

    def test_cancel_mid_sweep_keeps_journal(self, service):
        job = service.submit(JobRequest.from_dict({
            "kind": "sweep", "scenario": "quickstart", "params": FAST,
            "grid": {"cluster.n": [4, 5]}, "seeds": [0, 1, 2],
        }))
        wait_for(lambda: job.done_runs >= 1)
        service.cancel(job.id)
        assert job.finished_event.wait(120)
        assert job.state == "cancelled"
        assert 1 <= job.done_runs < len(job.runs)
        # The journal retains every completed run for a later resume.
        journal_lines = [
            json.loads(line)
            for line in open(job.journal_path, encoding="utf-8")
        ]
        entries = [line for line in journal_lines if "digest" in line]
        assert len(entries) >= job.done_runs - 1  # last run may post-date cancel
        with pytest.raises(JobStateError):
            service.cancel(job.id)

    def test_cancel_queued_job_immediately(self, tmp_path):
        service = ExperimentService(str(tmp_path / "jobs"))
        job = service.submit(JobRequest.from_dict(
            {"kind": "run", "scenario": "quickstart", "params": FAST}))
        cancelled = service.cancel(job.id)
        assert cancelled.state == "cancelled"
        assert job.finished_event.is_set()
        service.shutdown()

    def test_unknown_job_raises(self, service):
        with pytest.raises(UnknownJobError):
            service.job("job-999999")


class TestRestartResume:
    def test_graceful_shutdown_then_restart_is_byte_identical(self, tmp_path):
        request = JobRequest.from_dict({
            "kind": "sweep", "scenario": "quickstart", "params": FAST,
            "grid": {"cluster.n": [4, 5]}, "seeds": [0, 1],
        })
        want = cli_sweep_bytes(
            tmp_path, "direct.jsonl",
            ["quickstart", "-p", "workload.operations_per_client=2",
             "-g", "cluster.n=4,5", "--seeds", "0,1"],
        )
        jobs_dir = str(tmp_path / "jobs")
        first = ExperimentService(jobs_dir, workers=1)
        first.start()
        job = first.submit(request)
        wait_for(lambda: job.done_runs >= 1)
        first.shutdown()  # graceful: job stays resumable
        assert job.state == "running"

        second = ExperimentService(jobs_dir, workers=1)
        resumed = second.job(job.id)
        assert resumed.state == "queued"
        second.start()
        assert resumed.finished_event.wait(120)
        assert resumed.state == "done"
        assert resumed.done_runs == 4
        assert resumed.telemetry.resumed >= 1
        assert open(resumed.results_path, "rb").read() == want
        second.shutdown()


class TestRoutes:
    def test_unknown_route_is_404(self, service):
        response = dispatch(service, "GET", "/nope")
        assert response.status == 404
        assert response.payload["error"]["type"] == "ConfigurationError"

    def test_wrong_method_is_405(self, service):
        response = dispatch(service, "POST", "/healthz")
        assert response.status == 405
        assert "GET" in response.payload["error"]["message"]

    def test_invalid_json_body_is_400(self, service):
        response = dispatch(service, "POST", "/jobs", b"{nope")
        assert response.status == 400

    def test_malformed_spec_submission_is_400_with_path(self, service):
        body = json.dumps({
            "kind": "run",
            "spec": {"name": "x", "bad_section": {}},
        }).encode()
        response = dispatch(service, "POST", "/jobs", body)
        assert response.status == 400
        assert response.payload["error"]["path"] == "bad_section"

    def test_validate_endpoint_judges_specs(self, service):
        good = json.load(open(QUICKSTART_SPEC))
        response = dispatch(service, "POST", "/specs/validate",
                            json.dumps(good).encode())
        assert response.status == 200
        assert response.payload["ok"] is True
        assert "cluster.n" in response.payload["sweepable"]
        bad = dict(good, workload=dict(good["workload"],
                                       operations_per_client=-1))
        response = dispatch(service, "POST", "/specs/validate",
                            json.dumps(bad).encode())
        assert response.status == 200
        assert response.payload["ok"] is False
        assert response.payload["errors"][0]["path"] == "workload"

    def test_queue_full_is_503(self, tmp_path):
        service = ExperimentService(str(tmp_path / "jobs"), queue_limit=1)
        body = json.dumps({"kind": "run", "scenario": "quickstart",
                           "params": FAST}).encode()
        assert dispatch(service, "POST", "/jobs", body).status == 201
        assert dispatch(service, "POST", "/jobs", body).status == 503
        service.shutdown()


class TestHTTPServer:
    def test_submit_stream_cancel_roundtrip(self, http_client, tmp_path):
        spec = json.load(open(QUICKSTART_SPEC))
        job = http_client.submit({
            "kind": "sweep", "spec": spec,
            "params": FAST, "seeds": [0, 1],
        })
        assert job["state"] in ("queued", "running")
        served = http_client.results_bytes(job["id"])
        final = http_client.wait(job["id"])
        assert final["state"] == "done"
        assert final["done"] == final["total"] == 2
        want = cli_sweep_bytes(
            tmp_path, "direct.jsonl",
            ["--spec", QUICKSTART_SPEC, "--seeds", "0,1",
             "-p", "workload.operations_per_client=2"],
        )
        assert served == want
        with pytest.raises(ServeClientError) as excinfo:
            http_client.cancel(job["id"])
        assert excinfo.value.status == 409

    def test_jobs_listing_and_status(self, http_client):
        job = http_client.submit(
            {"kind": "run", "scenario": "quickstart", "params": FAST})
        http_client.wait(job["id"])
        listing = http_client.jobs()
        assert [entry["id"] for entry in listing] == [job["id"]]
        status = http_client.job(job["id"])
        assert status["resilience"]["resumed"] == 0

    def test_health_and_metrics(self, http_client):
        health = http_client.health()
        assert health["ok"] is True
        job = http_client.submit(
            {"kind": "run", "scenario": "quickstart", "params": FAST})
        http_client.wait(job["id"])
        metrics = http_client.metrics()
        assert metrics["counters"]["serve.jobs_submitted"] >= 1
        assert metrics["counters"]["serve.jobs_completed"] >= 1
        assert "serve.queue_depth" in metrics["gauges"]
        assert "serve.job_wall_seconds" in metrics["histograms"]

    def test_unknown_job_is_404_over_http(self, http_client):
        with pytest.raises(ServeClientError) as excinfo:
            http_client.job("job-424242")
        assert excinfo.value.status == 404


def free_port():
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


class TestKillDashNine:
    def test_kill9_mid_sweep_then_restart_is_byte_identical(self, tmp_path):
        """The ISSUE acceptance gate, as a real-process drill.

        Boot `python -m repro serve`, submit a sweep, `kill -9` the server
        after two runs complete, restart it on the same jobs directory, and
        assert the finished job's results equal a direct CLI sweep's bytes.
        """
        env = dict(os.environ)
        src = os.path.join(REPO, "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        port = free_port()
        jobs_dir = str(tmp_path / "jobs")
        argv = [sys.executable, "-m", "repro", "serve", "--host", "127.0.0.1",
                "--port", str(port), "--jobs-dir", jobs_dir, "--quiet"]
        client = ServeClient(f"http://127.0.0.1:{port}", timeout=10)

        def boot():
            process = subprocess.Popen(
                argv, env=env, cwd=REPO,
                stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
            )
            for _ in range(600):
                try:
                    client.health()
                    return process
                except (OSError, ServeClientError):
                    time.sleep(0.1)
            process.kill()
            raise AssertionError("server did not come up")

        first = boot()
        try:
            job = client.submit({
                "kind": "sweep", "scenario": "quickstart",
                "params": FAST, "grid": {"cluster.n": [4, 5]},
                "seeds": [0, 1, 2],
            })
            wait_for(lambda: client.job(job["id"])["done"] >= 2, timeout=120,
                     interval=0.05)
        finally:
            first.send_signal(signal.SIGKILL)
            first.wait()

        second = boot()
        try:
            final = client.wait(job["id"], timeout=120)
            assert final["state"] == "done"
            assert final["done"] == 6
            assert final["resilience"]["resumed"] >= 1
            served = client.results_bytes(job["id"])
        finally:
            second.terminate()
            second.wait()

        want = cli_sweep_bytes(
            tmp_path, "direct.jsonl",
            ["quickstart", "-p", "workload.operations_per_client=2",
             "-g", "cluster.n=4,5", "--seeds", "0,1,2"],
        )
        assert served == want
        payload = [json.loads(line) for line in served.splitlines()]
        assert not compare_payloads(payload, load_payload(
            str(tmp_path / "direct.jsonl")))
