"""Tests for monitoring, weight policies and the controller."""

from __future__ import annotations

import pytest

from repro.core.protocol import ReassignmentServer
from repro.core.spec import SystemConfig, check_rp_integrity
from repro.errors import ConfigurationError
from repro.monitoring import (
    LatencyMonitor,
    WeightController,
    clip_to_rp_integrity,
    install_probe_responder,
    proportional_inverse_latency_weights,
    wheat_style_weights,
)
from repro.net.latency import PerLinkLatency
from repro.net.network import Network
from repro.net.process import Process
from repro.net.simloop import SimLoop
from repro.quorum.availability import wmqs_is_available
from repro.types import server_set

from tests.conftest import make_net


class TestLatencyMonitor:
    def test_mean_and_ewma(self):
        monitor = LatencyMonitor(["s1", "s2"], window=4)
        for sample in (1.0, 2.0, 3.0):
            monitor.record("s1", sample)
        assert monitor.mean("s1") == pytest.approx(2.0)
        assert monitor.ewma("s1") is not None
        assert monitor.sample_count("s1") == 3
        assert monitor.mean("s2") is None

    def test_window_evicts_old_samples(self):
        monitor = LatencyMonitor(["s1"], window=2)
        for sample in (10.0, 1.0, 1.0):
            monitor.record("s1", sample)
        assert monitor.mean("s1") == pytest.approx(1.0)

    def test_summary_uses_default_for_unsampled(self):
        monitor = LatencyMonitor(["s1", "s2"])
        monitor.record("s1", 2.0)
        summary = monitor.summary(default=9.0)
        assert summary["s2"] == 9.0

    def test_negative_sample_rejected(self):
        monitor = LatencyMonitor(["s1"])
        with pytest.raises(ConfigurationError):
            monitor.record("s1", -1.0)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            LatencyMonitor(["s1"], window=0)
        with pytest.raises(ConfigurationError):
            LatencyMonitor(["s1"], ewma_alpha=0.0)

    def test_active_probe_measures_round_trips(self):
        table = {("probe", "s1"): 1.0, ("s1", "probe"): 1.0,
                 ("probe", "s2"): 5.0, ("s2", "probe"): 5.0}
        loop, net = make_net(PerLinkLatency(table, default=1.0))
        prober = Process("probe", net)
        for pid in ("s1", "s2"):
            install_probe_responder(Process(pid, net))
        monitor = LatencyMonitor(["s1", "s2"])

        async def go():
            return await monitor.probe(prober)

        observed = loop.run_until_complete(go())
        assert observed["s1"] == pytest.approx(2.0)
        assert observed["s2"] == pytest.approx(10.0)

    def test_probe_with_crashed_server_records_partial(self):
        loop, net = make_net()
        prober = Process("probe", net)
        for pid in ("s1", "s2"):
            install_probe_responder(Process(pid, net))
        net.crash("s2")
        monitor = LatencyMonitor(["s1", "s2"])

        async def go():
            return await monitor.probe(prober, timeout=50.0)

        observed = loop.run_until_complete(go())
        assert "s1" in observed and "s2" not in observed


class TestPolicies:
    def make_config(self):
        return SystemConfig.uniform(5, f=1)

    def test_proportional_weights_preserve_total_and_order(self):
        config = self.make_config()
        latencies = {"s1": 1.0, "s2": 1.0, "s3": 2.0, "s4": 4.0, "s5": 8.0}
        targets = proportional_inverse_latency_weights(latencies, config)
        assert sum(targets.values()) == pytest.approx(config.total_initial_weight)
        assert targets["s1"] > targets["s3"] > targets["s5"]

    def test_proportional_weights_respect_rp_floor(self):
        config = self.make_config()
        latencies = {"s1": 0.1, "s2": 0.1, "s3": 50.0, "s4": 50.0, "s5": 50.0}
        targets = proportional_inverse_latency_weights(latencies, config)
        assert check_rp_integrity(targets, config.total_initial_weight, config.f)

    def test_wheat_weights_binary_structure(self):
        config = self.make_config()
        latencies = {"s1": 1.0, "s2": 2.0, "s3": 3.0, "s4": 4.0, "s5": 5.0}
        targets = wheat_style_weights(latencies, config)
        assert sum(targets.values()) == pytest.approx(config.total_initial_weight)
        # n - 2f = 3 fast servers share the larger weight.
        values = sorted(set(round(v, 6) for v in targets.values()))
        assert len(values) == 2
        assert wmqs_is_available(targets, config.f)

    def test_clip_rejects_impossible_margin(self):
        config = self.make_config()
        with pytest.raises(ConfigurationError):
            clip_to_rp_integrity(config.initial_weights, config, margin=10.0)

    def test_policies_require_full_latency_map(self):
        config = self.make_config()
        with pytest.raises(ConfigurationError):
            proportional_inverse_latency_weights({"s1": 1.0}, config)
        with pytest.raises(ConfigurationError):
            wheat_style_weights({"s1": 1.0}, config)


class TestWeightController:
    def build(self, n=5, f=1):
        loop = SimLoop()
        network = Network(loop)
        config = SystemConfig.uniform(n, f=f)
        servers = {pid: ReassignmentServer(pid, network, config) for pid in config.servers}
        return loop, config, servers

    def test_step_moves_weight_towards_targets(self):
        loop, config, servers = self.build()
        controller = WeightController(servers["s1"], tolerance=0.01)
        controller.set_targets({"s1": 0.7, "s2": 1.3, "s3": 1.0, "s4": 1.0, "s5": 1.0})

        async def go():
            return await controller.step()

        report = loop.run_until_complete(go())
        assert report.attempted
        assert report.outcome is not None and report.outcome.effective
        assert servers["s1"].weight() == pytest.approx(0.7)

    def test_controller_never_violates_rp_integrity(self):
        loop, config, servers = self.build()
        controller = WeightController(servers["s1"], tolerance=0.01)
        # An infeasible target far below the RP bound: the controller must cap.
        controller.set_targets({"s1": 0.1, "s2": 1.9, "s3": 1.0, "s4": 1.0, "s5": 1.0})

        async def go():
            for _ in range(5):
                await controller.step()

        loop.run_until_complete(go())
        loop.run()
        weights = servers["s1"].local_weights()
        assert check_rp_integrity(weights, config.total_initial_weight, config.f)

    def test_no_step_when_within_tolerance(self):
        loop, config, servers = self.build()
        controller = WeightController(servers["s2"], tolerance=0.5)
        controller.set_targets({"s1": 1.2, "s2": 0.8, "s3": 1.0, "s4": 1.0, "s5": 1.0})

        async def go():
            return await controller.step()

        report = loop.run_until_complete(go())
        assert not report.attempted

    def test_distance_metric_decreases(self):
        loop, config, servers = self.build()
        controllers = {pid: WeightController(servers[pid], tolerance=0.02) for pid in config.servers}
        targets = {"s1": 0.75, "s2": 1.25, "s3": 1.1, "s4": 0.9, "s5": 1.0}
        for controller in controllers.values():
            controller.set_targets(targets)
        before = controllers["s1"].distance_to_targets()

        async def go():
            for _ in range(3):
                for controller in controllers.values():
                    await controller.step()
                await loop.sleep(5.0)

        loop.run_until_complete(go())
        loop.run()
        after = controllers["s1"].distance_to_targets()
        assert after < before

    def test_targets_must_cover_server_set(self):
        loop, config, servers = self.build()
        controller = WeightController(servers["s1"])
        with pytest.raises(ConfigurationError):
            controller.set_targets({"s1": 1.0})

    def test_invalid_tolerance_rejected(self):
        loop, config, servers = self.build()
        with pytest.raises(ConfigurationError):
            WeightController(servers["s1"], tolerance=0.0)
