"""Integration tests for ``repro.obs``: passivity, determinism, spec + CLI.

The contract under test:

* **Passivity** — an installed observer only records; enabled runs produce
  exactly the same simulation results as disabled runs.
* **Zero disabled overhead** — without an observer, ``SimLoop`` runs the
  original uninstrumented dispatch loops (checked structurally, and via the
  ``event-loop`` / ``event-loop-obs`` benchmark twins doing identical work).
* **Determinism** — traces are byte-stable across repeats, hash seeds, and
  serial vs parallel execution (for churn-free runs; see ARCHITECTURE.md on
  the weight-gain-refresh caveat).
* **Golden digest** — ``fig1-walkthrough``'s trace digest is pinned in
  ``benchmarks/baselines/fig1-walkthrough.trace.sha256``.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import sys

import pytest

from repro.core.spec import SystemConfig
from repro.errors import ConfigurationError
from repro.experiments.cli import main
from repro.experiments.spec import ObservabilitySpec, ScenarioSpec
from repro.net.latency import UniformLatency
from repro.net.simloop import SimLoop
from repro.obs import Observer, observing, read_trace, trace_digest
from repro.sim.cluster import build_dynamic_cluster
from repro.sim.runner import run_workload
from repro.sim.workload import uniform_workload

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
GOLDEN_TRACE_FILE = os.path.join(
    REPO_ROOT, "benchmarks", "baselines", "fig1-walkthrough.trace.sha256"
)


def _small_run(observer=None):
    """One small dynamic-cluster workload, optionally observed."""
    with observing(observer):
        config = SystemConfig(servers=("s1", "s2", "s3", "s4", "s5"), f=1)
        cluster = build_dynamic_cluster(
            config, latency=UniformLatency(0.5, 1.5, seed=7), client_count=3
        )
        workload = uniform_workload(
            list(cluster.clients), operations_per_client=5,
            read_ratio=0.7, mean_think_time=0.3, seed=7,
        )
        report = run_workload(cluster, workload)
    return cluster, report


# ---------------------------------------------------------------------------
# Passivity + kernel accounting
# ---------------------------------------------------------------------------


class TestPassivity:
    def test_observed_run_matches_unobserved_run(self):
        _, plain = _small_run(observer=None)
        _, observed = _small_run(observer=Observer())
        assert observed.operations == plain.operations
        assert observed.restarts == plain.restarts
        assert observed.messages_sent == plain.messages_sent
        assert observed.duration == plain.duration
        assert observed.read_latency == plain.read_latency
        assert observed.write_latency == plain.write_latency

    def test_unobserved_report_has_no_metrics(self):
        _, report = _small_run(observer=None)
        assert report.metrics is None

    def test_kernel_counters_account_for_every_event(self):
        observer = Observer()
        cluster, report = _small_run(observer=observer)
        counters = report.metrics["counters"]
        assert counters["kernel.events"] == cluster.loop.events_processed
        assert (counters["kernel.ready_dispatches"]
                + counters["kernel.heap_dispatches"]) == counters["kernel.events"]
        assert counters["net.sent"] == cluster.network.messages_sent
        assert counters["net.delivered"] == cluster.network.messages_delivered
        assert report.metrics["gauges"]["kernel.max_queue_depth"]["max"] > 0

    def test_quorum_and_storage_counters_match_the_workload(self):
        observer = Observer()
        _, report = _small_run(observer=observer)
        counters = report.metrics["counters"]
        # 3 clients x 5 ops, read_ratio deterministic per seed
        assert counters["storage.ops.read"] + counters["storage.ops.write"] == 15
        assert counters["storage.phase1"] == 15
        assert counters["storage.phase2"] == 15
        quorum = report.metrics["histograms"]["storage.quorum_size"]
        assert quorum["count"] == 30  # one observation per phase

    def test_weight_gain_refresh_depth_is_measured(self):
        # build_dynamic_cluster + weight transfers trigger the refresh;
        # drive one explicit transfer to exercise the hook.
        observer = Observer()
        with observing(observer):
            config = SystemConfig(servers=("s1", "s2", "s3", "s4", "s5"), f=1)
            cluster = build_dynamic_cluster(
                config, latency=UniformLatency(0.5, 1.5, seed=3), client_count=1
            )

            async def kick():
                await cluster.servers["s1"].transfer("s2", 0.2)

            cluster.loop.create_task(kick(), name="kick")
            cluster.loop.run()
        counters = observer.metrics.as_dict()["counters"]
        assert counters["protocol.transfers.effective"] >= 1
        assert counters["storage.weight_gain_refreshes"] >= 1
        depth = observer.metrics.as_dict()["gauges"]["storage.weight_gain_refresh_depth"]
        assert depth["max"] >= 1.0


class TestDisabledPathIsUntouched:
    def test_unobserved_loop_never_enters_instrumented_dispatch(self, monkeypatch):
        def boom(*args, **kwargs):
            raise AssertionError("instrumented loop used without an observer")

        monkeypatch.setattr(SimLoop, "_run_target_observed", boom)
        monkeypatch.setattr(SimLoop, "_run_observed", boom)
        _, report = _small_run(observer=None)  # must not touch the copies
        assert report.operations == 15

    def test_observed_loop_delegates_to_instrumented_dispatch(self, monkeypatch):
        sentinel = {"hit": 0}
        original = SimLoop._run_target_observed

        def spy(self, target, max_time):
            sentinel["hit"] += 1
            return original(self, target, max_time)

        monkeypatch.setattr(SimLoop, "_run_target_observed", spy)
        _small_run(observer=Observer())
        assert sentinel["hit"] >= 1

    def test_benchmark_twins_do_identical_work(self):
        # The expectations file pins both, but assert the linkage directly:
        # the instrumented benchmark must process exactly as many events as
        # the uninstrumented one, at both scales.
        from repro.bench.core import run_benchmark

        for quick in (True, False):
            plain = run_benchmark("event-loop", quick=quick).deterministic_view()
            obs = run_benchmark("event-loop-obs", quick=quick).deterministic_view()
            assert obs["events"] == plain["events"]
            assert obs["ops"] == plain["ops"]
            assert (obs["counters"]["ready_dispatches"]
                    + obs["counters"]["heap_dispatches"]) == obs["events"]


# ---------------------------------------------------------------------------
# ObservabilitySpec + run_spec wiring
# ---------------------------------------------------------------------------


class TestObservabilitySpec:
    def test_defaults_off_and_round_trip(self):
        spec = ObservabilitySpec()
        assert spec.enabled is False
        assert ObservabilitySpec.from_dict(spec.to_dict()) == spec
        enabled = ObservabilitySpec(enabled=True, trace_messages=False)
        assert ObservabilitySpec.from_dict(enabled.to_dict()) == enabled

    def test_rejects_unknown_keys_and_useless_configs(self):
        with pytest.raises(ConfigurationError, match="unknown key"):
            ObservabilitySpec.from_dict({"bogus": 1})
        with pytest.raises(ConfigurationError, match="records nothing"):
            ObservabilitySpec(enabled=True, metrics=False, trace=False).validate()
        with pytest.raises(ConfigurationError):
            ObservabilitySpec(trace_path="out.jsonl").validate()  # not enabled

    def test_build_returns_none_when_disabled(self):
        assert ObservabilitySpec().build() is None
        observer = ObservabilitySpec(enabled=True, trace=False).build()
        assert observer.metrics is not None and observer.trace is None

    def test_scenario_spec_flatten_exposes_observability(self):
        spec = ScenarioSpec.from_dict(
            {"name": "t",
             "observability": {"enabled": True, "trace_messages": False}})
        flat = spec.flatten()
        assert flat["observability.enabled"] is True
        assert flat["observability.trace_messages"] is False


class TestRunSpecWiring:
    def test_disabled_result_has_no_observability_keys(self):
        from repro.experiments.spec import run_spec

        result = run_spec(ScenarioSpec(name="t"))
        assert "metrics" not in result and "trace" not in result

    def test_enabled_result_adds_blocks_without_changing_the_core(self):
        from repro.experiments.spec import run_spec

        plain = run_spec(ScenarioSpec(name="t"))
        spec = ScenarioSpec.from_dict(
            {"name": "t", "observability": {"enabled": True}})
        observed = run_spec(spec)
        metrics = observed.pop("metrics")
        trace = observed.pop("trace")
        assert observed == plain  # byte-identical core payload
        assert metrics["counters"]["kernel.events"] > 0
        assert trace["records"] > 0
        assert len(trace["digest"]) == 64

    def test_trace_path_writes_the_jsonl(self, tmp_path):
        from repro.experiments.spec import run_spec

        path = tmp_path / "spec.jsonl"
        spec = ScenarioSpec.from_dict(
            {"name": "t",
             "observability": {"enabled": True, "trace_path": str(path)}})
        result = run_spec(spec)
        records = read_trace(str(path))
        assert len(records) == result["trace"]["records"]
        assert trace_digest(records) == result["trace"]["digest"]


# ---------------------------------------------------------------------------
# CLI: run --trace / --metrics, sweep --trace-dir, trace subcommand
# ---------------------------------------------------------------------------


FAST = ["-p", "workload.operations_per_client=2"]


class TestCliTracing:
    def test_run_trace_writes_valid_jsonl_and_reports_digest(self, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        assert main(["run", "quickstart", *FAST, "--trace", str(path)]) == 0
        payload = json.loads(capsys.readouterr().out)
        records = read_trace(str(path))
        assert payload[0]["result"]["trace"]["digest"] == trace_digest(records)
        assert payload[0]["result"]["trace"]["records"] == len(records)

    def test_run_metrics_adds_counters(self, capsys):
        assert main(["run", "quickstart", *FAST, "--metrics"]) == 0
        payload = json.loads(capsys.readouterr().out)
        counters = payload[0]["result"]["metrics"]["counters"]
        assert counters["kernel.events"] > 0

    def test_run_without_flags_keeps_result_clean(self, capsys):
        assert main(["run", "quickstart", *FAST]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "metrics" not in payload[0]["result"]
        assert "trace" not in payload[0]["result"]

    def test_trace_subcommand_summarises_and_exports(self, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        assert main(["run", "fig1-walkthrough", "--trace", str(path),
                     "--quiet"]) == 0
        capsys.readouterr()
        chrome = tmp_path / "chrome.json"
        assert main(["trace", str(path), "--export", str(chrome)]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["records"] == len(read_trace(str(path)))
        assert summary["digest"] == trace_digest(read_trace(str(path)))
        exported = json.loads(chrome.read_text())
        assert exported["traceEvents"]

    def test_trace_subcommand_rejects_corrupt_files(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"nope": true}\n')
        assert main(["trace", str(path)]) == 2
        assert "invalid trace record" in capsys.readouterr().err

    def test_sweep_trace_dir_serial_equals_parallel(self, tmp_path):
        # transfers=[] keeps the run churn-free: with the dynamic flavour's
        # default transfers the weight-gain refresh recursion aborts at a
        # stack-depth-dependent point, which is the one known source of
        # trace nondeterminism (see ARCHITECTURE.md).
        def sweep(workers, out_dir):
            args = ["sweep", "quickstart", "--seeds", "0,1", *FAST,
                    "-p", "transfers=[]", "--quiet",
                    "--workers", str(workers), "--trace-dir", str(out_dir)]
            assert main(args) == 0

        serial, parallel = tmp_path / "serial", tmp_path / "parallel"
        sweep(1, serial)
        sweep(2, parallel)
        serial_files = sorted(os.listdir(serial))
        assert serial_files == sorted(os.listdir(parallel))
        assert len(serial_files) == 2
        for name in serial_files:
            assert (serial / name).read_bytes() == (parallel / name).read_bytes()
            read_trace(str(serial / name))  # every per-run file is schema-valid

    def test_sweep_trace_dir_requires_spec_scenario(self, tmp_path, capsys):
        assert main(["sweep", "fig1-walkthrough", "--seeds", "0",
                     "--trace-dir", str(tmp_path / "t")]) == 2
        assert "declarative" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# Determinism: repeats, hash seeds, golden digest
# ---------------------------------------------------------------------------


def _golden_digest() -> str:
    with open(GOLDEN_TRACE_FILE, "r", encoding="utf-8") as handle:
        return handle.read().strip()


class TestTraceDeterminism:
    def test_repeated_runs_produce_identical_digests(self, tmp_path, capsys):
        digests = []
        for index in range(2):
            path = tmp_path / f"run{index}.jsonl"
            assert main(["run", "fig1-walkthrough", "--trace", str(path),
                         "--quiet"]) == 0
            capsys.readouterr()
            digests.append(trace_digest(read_trace(str(path))))
        assert digests[0] == digests[1]

    def test_fig1_walkthrough_matches_the_golden_digest(self, tmp_path, capsys):
        path = tmp_path / "golden.jsonl"
        assert main(["run", "fig1-walkthrough", "--trace", str(path),
                     "--quiet"]) == 0
        capsys.readouterr()
        assert hashlib.sha256(path.read_bytes()).hexdigest() == _golden_digest()

    @pytest.mark.parametrize("hashseed", ["1", "999"])
    def test_digest_is_hashseed_independent(self, tmp_path, hashseed):
        path = tmp_path / f"seed{hashseed}.jsonl"
        env = dict(os.environ, PYTHONHASHSEED=hashseed,
                   PYTHONPATH=os.path.join(REPO_ROOT, "src"))
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "run", "fig1-walkthrough",
             "--trace", str(path), "--quiet"],
            capture_output=True, text=True, env=env, cwd=REPO_ROOT, timeout=120,
        )
        assert completed.returncode == 0, completed.stderr
        assert hashlib.sha256(path.read_bytes()).hexdigest() == _golden_digest()
