"""Tests for the resilience layer: journaled resume, watchdogs, retry,
quarantine, graceful interruption, and the pool failure paths they exercise.

The worker-death tests SIGKILL real processes, so everything that needs the
kill-capable pool is gated on fork availability (the pool forks so workers
inherit runtime-registered scenarios).
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import time

import pytest

import repro.experiments.executor as executor_module
from repro.errors import ConfigurationError
from repro.experiments import (
    INTERRUPT_EXIT_CODE,
    Quarantine,
    ResiliencePolicy,
    RunJournal,
    RunSpec,
    StreamTelemetry,
    execute_stream,
    execute_stream_resilient,
    expand_grid,
    journalable,
    load_quarantine,
    run_digest,
)
from repro.experiments.cli import main
from repro.experiments.executor import execute_run_captured, shutdown_pool
from repro.experiments.registry import FunctionScenario, register, unregister

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()
needs_fork = pytest.mark.skipif(
    not HAS_FORK, reason="kill-capable worker pool needs fork"
)


# ---------------------------------------------------------------------------
# Misbehaving scenarios, registered per-test (never at import time: the
# docs drift check enumerates the registry in-process).
# ---------------------------------------------------------------------------


def _well_behaved(seed=0):
    return {"ok": True, "seed": seed}


def _hang_or_return(seed=0, hang=False):
    if hang:
        time.sleep(60.0)
    return {"ok": True, "seed": seed}


def _die_unless_marked(seed=0, sentinel="", always=False):
    if always or not os.path.exists(sentinel):
        if sentinel and not always:
            with open(sentinel, "w", encoding="utf-8") as handle:
                handle.write("dispatched once\n")
        os.kill(os.getpid(), signal.SIGKILL)
    return {"ok": True, "seed": seed}


def _sigterm_once(seed=0, sentinel=""):
    if seed == 1 and sentinel and not os.path.exists(sentinel):
        with open(sentinel, "w", encoding="utf-8") as handle:
            handle.write("interrupted once\n")
        signal.raise_signal(signal.SIGTERM)
    return {"ok": True, "seed": seed}


@pytest.fixture
def misbehaving_scenarios():
    entries = [
        FunctionScenario(_well_behaved, name="resilience-ok"),
        FunctionScenario(_hang_or_return, name="resilience-hang"),
        FunctionScenario(_die_unless_marked, name="resilience-die"),
        FunctionScenario(_sigterm_once, name="resilience-sigterm"),
    ]
    for entry in entries:
        register(entry)
    try:
        yield
    finally:
        for entry in entries:
            unregister(entry.name)
        shutdown_pool()


# ---------------------------------------------------------------------------
# run_digest
# ---------------------------------------------------------------------------


class TestRunDigest:
    def test_param_order_does_not_matter(self):
        a = RunSpec("s", params=(("x", 1), ("y", 2)))
        b = RunSpec("s", params=(("y", 2), ("x", 1)))
        assert run_digest(a) == run_digest(b)

    def test_value_types_are_distinguished(self):
        digests = {
            run_digest(RunSpec("s", params=(("x", value),)))
            for value in (1, 1.0, "1", (1,), [1], True)
        }
        assert len(digests) == 6

    def test_scenario_and_params_are_load_bearing(self):
        base = RunSpec("s", params=(("x", 1),))
        assert run_digest(base) != run_digest(RunSpec("t", params=(("x", 1),)))
        assert run_digest(base) != run_digest(RunSpec("s", params=(("x", 2),)))
        assert run_digest(base) == run_digest(RunSpec("s", params=(("x", 1),)))


# ---------------------------------------------------------------------------
# RunJournal
# ---------------------------------------------------------------------------


HEADER = {"kind": "sweep", "version": 1, "scenario": "quickstart"}


class TestRunJournal:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        with RunJournal(path, HEADER) as journal:
            journal.record("d1", {"result": {"ok": 1}})
            journal.record("d2", {"result": {"ok": 2}})
            journal.record_summary({"completed": 2})
        resumed = RunJournal(path, HEADER, resume=True)
        assert resumed.get("d1") == {"digest": "d1", "result": {"ok": 1}}
        assert resumed.get("d2")["result"] == {"ok": 2}
        assert resumed.get("missing") is None
        resumed.close()

    def test_partial_final_line_is_discarded(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        with RunJournal(path, HEADER) as journal:
            journal.record("d1", {"result": {"ok": 1}})
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"digest": "d2", "result": {"ok"')  # the SIGKILL cut
        journal = RunJournal(path, HEADER, resume=True)
        assert journal.get("d1") is not None
        assert journal.get("d2") is None
        journal.close()

    def test_mid_file_corruption_is_an_error(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        with RunJournal(path, HEADER) as journal:
            journal.record("d1", {"result": {"ok": 1}})
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("not json\n")
            handle.write(json.dumps({"digest": "d2", "result": {}}) + "\n")
        with pytest.raises(ConfigurationError, match="undecodable record"):
            RunJournal(path, HEADER, resume=True)

    def test_header_mismatch_is_an_error(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        RunJournal(path, HEADER).close()
        other = dict(HEADER, scenario="fig1-walkthrough")
        with pytest.raises(ConfigurationError, match="different configuration"):
            RunJournal(path, other, resume=True)

    def test_resume_of_missing_file_starts_fresh(self, tmp_path):
        path = str(tmp_path / "absent.jsonl")
        journal = RunJournal(path, HEADER, resume=True)
        assert journal.entries == {}
        journal.close()
        with open(path, "r", encoding="utf-8") as handle:
            assert json.loads(handle.readline())["journal"] == HEADER

    def test_without_resume_truncates(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        with RunJournal(path, HEADER) as journal:
            journal.record("d1", {"result": {"ok": 1}})
        with RunJournal(path, HEADER) as journal:
            assert journal.get("d1") is None


# ---------------------------------------------------------------------------
# Policy validation and inert delegation
# ---------------------------------------------------------------------------


class TestPolicy:
    def test_invalid_policies_are_rejected(self):
        with pytest.raises(ConfigurationError, match="run_timeout"):
            ResiliencePolicy(run_timeout=0.0).validate()
        with pytest.raises(ConfigurationError, match="max_attempts"):
            ResiliencePolicy(max_attempts=0).validate()

    def test_backoff_grows_and_caps(self):
        policy = ResiliencePolicy(
            max_attempts=5, backoff_base=0.1, backoff_factor=2.0,
            backoff_max=0.3,
        )
        assert policy.backoff(1) == pytest.approx(0.1)
        assert policy.backoff(2) == pytest.approx(0.2)
        assert policy.backoff(4) == pytest.approx(0.3)  # capped

    def test_default_policy_is_inert(self):
        assert not ResiliencePolicy().needs_pool
        assert ResiliencePolicy(run_timeout=1.0).needs_pool
        assert ResiliencePolicy(max_attempts=2).needs_pool

    def test_inert_call_matches_plain_stream(self):
        runs = expand_grid(
            "quickstart",
            grid={"seed": [0, 1]},
            base={"workload.operations_per_client": 2},
        )
        plain = sorted(
            (index, result.result) for index, result in execute_stream(runs)
        )
        resilient = sorted(
            (index, result.result)
            for index, result in execute_stream_resilient(runs)
        )
        assert plain == resilient


class TestTelemetry:
    def test_suffix_is_empty_when_clean(self):
        assert StreamTelemetry().suffix() == ""

    def test_suffix_lists_nonzero_counters_only(self):
        telemetry = StreamTelemetry(resumed=3, retries=1)
        assert telemetry.suffix() == " (resumed 3, retries 1)"

    def test_as_dict_excludes_resumed(self):
        # Byte-identity of resumed vs uninterrupted reports depends on it.
        assert StreamTelemetry(resumed=7).as_dict() == {
            "retries": 0, "timeouts": 0, "quarantined": 0,
        }


# ---------------------------------------------------------------------------
# Journaled resume (library level)
# ---------------------------------------------------------------------------


class TestJournaledStream:
    def _runs(self):
        return expand_grid(
            "quickstart",
            grid={"seed": [0, 1, 2]},
            base={"workload.operations_per_client": 2},
        )

    def test_resume_skips_journaled_runs_and_matches(self, tmp_path):
        runs = self._runs()
        path = str(tmp_path / "j.jsonl")
        with RunJournal(path, HEADER) as journal:
            reference = [
                (index, result.result)
                for index, result in execute_stream_resilient(
                    runs, journal=journal
                )
            ]
        # Drop the last journal entry: that run must re-execute on resume.
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
        with open(path, "w", encoding="utf-8") as handle:
            handle.writelines(lines[:-1])
        telemetry = StreamTelemetry()
        with RunJournal(path, HEADER, resume=True) as journal:
            resumed = [
                (index, result.result)
                for index, result in execute_stream_resilient(
                    runs, journal=journal, telemetry=telemetry
                )
            ]
        assert telemetry.resumed == 2
        assert sorted(resumed) == sorted(reference)
        # Journaled results replay first, in input order.
        assert [index for index, _ in resumed[:2]] == [0, 1]

    def test_fully_journaled_stream_executes_nothing(self, tmp_path):
        runs = self._runs()
        path = str(tmp_path / "j.jsonl")
        with RunJournal(path, HEADER) as journal:
            reference = [
                (index, result.result)
                for index, result in execute_stream_resilient(
                    runs, journal=journal
                )
            ]
        telemetry = StreamTelemetry()
        progress_calls = []
        with RunJournal(path, HEADER, resume=True) as journal:
            replayed = [
                (index, result.result)
                for index, result in execute_stream_resilient(
                    runs, journal=journal, telemetry=telemetry,
                    progress=lambda done, total: progress_calls.append(
                        (done, total)
                    ),
                )
            ]
        assert replayed == reference  # input order, nothing re-run
        assert telemetry.resumed == 3
        assert progress_calls == [(1, 3), (2, 3), (3, 3)]


# ---------------------------------------------------------------------------
# Watchdog, retry, quarantine (the kill-capable pool)
# ---------------------------------------------------------------------------


@needs_fork
class TestWatchdog:
    def test_hung_run_is_killed_and_stream_drains(self, misbehaving_scenarios):
        runs = [
            RunSpec("resilience-ok", params=(("seed", 0),)),
            RunSpec("resilience-hang", params=(("hang", True), ("seed", 1))),
            RunSpec("resilience-ok", params=(("seed", 2),)),
        ]
        telemetry = StreamTelemetry()
        results = dict(execute_stream_resilient(
            runs, workers=1,
            policy=ResiliencePolicy(run_timeout=0.5),
            telemetry=telemetry,
        ))
        assert telemetry.timeouts == 1
        assert results[0].result == {"ok": True, "seed": 0}
        assert results[2].result == {"ok": True, "seed": 2}
        error = results[1].result["error"]
        assert error["type"] == "WatchdogTimeout"
        assert error["run_timeout"] == 0.5
        assert "watchdog" in error["message"]
        # A timeout is a wall-clock accident: resume must retry it.
        assert not journalable(results[1])
        assert journalable(results[0])


@needs_fork
class TestRetryAndQuarantine:
    def test_worker_death_is_retried(self, misbehaving_scenarios, tmp_path):
        sentinel = str(tmp_path / "dispatched")
        runs = [
            RunSpec("resilience-die",
                    params=(("seed", 0), ("sentinel", sentinel))),
            RunSpec("resilience-ok", params=(("seed", 1),)),
        ]
        telemetry = StreamTelemetry()
        results = dict(execute_stream_resilient(
            runs, workers=1,
            policy=ResiliencePolicy(max_attempts=3, backoff_base=0.01),
            telemetry=telemetry,
        ))
        assert telemetry.retries == 1
        assert telemetry.quarantined == 0
        assert results[0].result == {"ok": True, "seed": 0}
        assert results[1].result == {"ok": True, "seed": 1}

    def test_poison_config_is_quarantined(self, misbehaving_scenarios,
                                          tmp_path):
        quarantine_path = str(tmp_path / "quarantine.jsonl")
        runs = [
            RunSpec("resilience-ok", params=(("seed", 0),)),
            RunSpec("resilience-die", params=(("always", True), ("seed", 1))),
            RunSpec("resilience-ok", params=(("seed", 2),)),
        ]
        telemetry = StreamTelemetry()
        quarantine = Quarantine(quarantine_path)
        results = dict(execute_stream_resilient(
            runs, workers=2,
            policy=ResiliencePolicy(max_attempts=2, backoff_base=0.01),
            telemetry=telemetry, quarantine=quarantine,
        ))
        quarantine.close()
        # The stream drained: the healthy runs completed around the poison.
        assert results[0].result == {"ok": True, "seed": 0}
        assert results[2].result == {"ok": True, "seed": 2}
        error = results[1].result["error"]
        assert error["type"] == "WorkerCrashed"
        assert error["quarantined"] is True
        assert error["attempts"] == 2
        assert telemetry.quarantined == 1
        assert telemetry.retries == 1  # first death re-dispatched once
        assert not journalable(results[1])
        records = load_quarantine(quarantine_path)
        assert len(records) == 1
        assert records[0]["attempts"] == 2
        assert records[0]["spec"]["scenario"] == "resilience-die"
        assert records[0]["spec"]["params"]["always"] is True

    def test_lazy_quarantine_leaves_no_file_when_clean(self, tmp_path):
        path = str(tmp_path / "quarantine.jsonl")
        quarantine = Quarantine(path)
        quarantine.close()
        assert not os.path.exists(path)
        assert load_quarantine(path) == []

    def test_abandoned_resilient_stream_stops_workers(
        self, misbehaving_scenarios
    ):
        before = {child.pid for child in multiprocessing.active_children()}
        runs = [RunSpec("resilience-ok", params=(("seed", seed),))
                for seed in range(4)]
        stream = execute_stream_resilient(
            runs, workers=2, policy=ResiliencePolicy(run_timeout=30.0),
        )
        next(stream)
        stream.close()  # generator finally must stop the pool workers
        leaked = [
            child for child in multiprocessing.active_children()
            if child.pid not in before
        ]
        for child in leaked:
            child.join(timeout=5.0)
        assert not any(child.is_alive() for child in leaked)


# ---------------------------------------------------------------------------
# The warm pool keeps its contract around the resilience layer
# ---------------------------------------------------------------------------


@needs_fork
class TestWarmPoolSharing:
    def test_same_shape_concurrent_streams_share_the_warm_pool(self):
        runs = expand_grid(
            "quickstart",
            grid={"seed": [0, 1]},
            base={"workload.operations_per_client": 2},
        )
        try:
            first = execute_stream(runs, workers=2)
            first_head = next(first)
            pool = executor_module._warm_pool
            assert pool is not None
            second = execute_stream(runs, workers=2)
            second_head = next(second)
            # Same (workers, registry) shape: one shared pool, refcounted.
            assert executor_module._warm_pool is pool
            assert executor_module._warm_active == 2
            rest = sorted([first_head[0]] + [i for i, _ in first])
            rest_second = sorted([second_head[0]] + [i for i, _ in second])
            assert rest == rest_second == [0, 1]
            assert executor_module._warm_pool is pool  # still warm
            assert executor_module._warm_active == 0
        finally:
            shutdown_pool()

    def test_inert_resilient_stream_uses_the_warm_pool(self):
        runs = expand_grid(
            "quickstart",
            grid={"seed": [0, 1]},
            base={"workload.operations_per_client": 2},
        )
        try:
            list(execute_stream_resilient(runs, workers=2))
            assert executor_module._warm_pool is not None
        finally:
            shutdown_pool()

    def test_resilient_pool_does_not_touch_the_warm_pool(
        self, misbehaving_scenarios
    ):
        shutdown_pool()
        runs = [RunSpec("resilience-ok", params=(("seed", 0),))]
        list(execute_stream_resilient(
            runs, workers=2, policy=ResiliencePolicy(run_timeout=30.0),
        ))
        assert executor_module._warm_pool is None


# ---------------------------------------------------------------------------
# execute_run_captured: unexpected exceptions become deterministic results
# ---------------------------------------------------------------------------


class TestCapturedUnexpectedErrors:
    def test_non_repro_error_is_captured_with_marker(self):
        def _explodes(seed=0):
            raise RuntimeError("boom %d" % seed)

        register(FunctionScenario(_explodes, name="resilience-explodes"))
        try:
            result = execute_run_captured(
                RunSpec("resilience-explodes", params=(("seed", 3),))
            )
        finally:
            unregister("resilience-explodes")
        assert result.result["error"] == {
            "type": "RuntimeError",
            "message": "boom 3",
            "unexpected": True,
        }

    def test_repro_errors_keep_the_legacy_shape(self):
        result = execute_run_captured(RunSpec("no-such-scenario"))
        error = result.result["error"]
        assert "unexpected" not in error
        assert error["type"] == "ConfigurationError"


# ---------------------------------------------------------------------------
# CLI: journaled sweeps, resume byte-identity, interruption exit code
# ---------------------------------------------------------------------------


class TestSweepCli:
    def _sweep_args(self, json_path, extra=()):
        return [
            "sweep", "quickstart", "--seeds", "0,1,2",
            "-p", "workload.operations_per_client=2",
            "--quiet", "--no-progress", "--json", json_path, *extra,
        ]

    def test_journaled_sweep_matches_plain_and_resumes(self, tmp_path,
                                                       capsys):
        ref = str(tmp_path / "ref.json")
        assert main(self._sweep_args(ref)) == 0
        journaled = str(tmp_path / "journaled.json")
        journal = str(tmp_path / "journal.jsonl")
        assert main(self._sweep_args(
            journaled, ["--journal", journal])) == 0
        with open(ref, "rb") as a, open(journaled, "rb") as b:
            assert a.read() == b.read()

        # Truncate the journal to one completed run and resume, parallel.
        with open(journal, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
        trunc = str(tmp_path / "trunc.jsonl")
        with open(trunc, "w", encoding="utf-8") as handle:
            handle.writelines(lines[:2])  # header + first run
        resumed = str(tmp_path / "resumed.json")
        capsys.readouterr()
        workers = "2" if HAS_FORK else "1"
        assert main(self._sweep_args(
            resumed, ["--resume", trunc, "--workers", workers])) == 0
        with open(ref, "rb") as a, open(resumed, "rb") as b:
            assert a.read() == b.read()
        stderr = capsys.readouterr().err
        assert "resilience: resumed 1" in stderr

    def test_progress_suffix_counts_resumed_runs(self, tmp_path, capsys):
        journal = str(tmp_path / "journal.jsonl")
        out = str(tmp_path / "out.json")
        assert main([
            "sweep", "quickstart", "--seeds", "0,1",
            "-p", "workload.operations_per_client=2",
            "--quiet", "--json", out, "--journal", journal,
            "--no-progress",
        ]) == 0
        capsys.readouterr()
        assert main([
            "sweep", "quickstart", "--seeds", "0,1",
            "-p", "workload.operations_per_client=2",
            "--quiet", "--json", out, "--resume", journal,
        ]) == 0
        stderr = capsys.readouterr().err
        assert "(resumed 1)" in stderr
        assert "(resumed 2)" in stderr

    def test_conflicting_journal_and_resume_paths_error(self, tmp_path,
                                                        capsys):
        assert main([
            "sweep", "quickstart", "--seeds", "0",
            "--journal", str(tmp_path / "a.jsonl"),
            "--resume", str(tmp_path / "b.jsonl"),
            "--quiet", "--no-progress",
        ]) == 2
        assert "different files" in capsys.readouterr().err

    def test_invalid_retry_count_errors(self, capsys):
        assert main([
            "sweep", "quickstart", "--seeds", "0", "--retry", "0",
            "--quiet", "--no-progress",
        ]) == 2
        assert "max_attempts" in capsys.readouterr().err

    def test_sigterm_exits_resumable_and_resume_completes(
        self, misbehaving_scenarios, tmp_path, capsys
    ):
        sentinel = str(tmp_path / "interrupted")
        journal = str(tmp_path / "journal.jsonl")
        args = [
            "sweep", "resilience-sigterm", "-g", "seed=0,1,2",
            "-p", f"sentinel={sentinel}",
            "--quiet", "--no-progress",
        ]
        out = str(tmp_path / "resumed.json")
        status = main(args + ["--journal", journal])
        assert status == INTERRUPT_EXIT_CODE
        stderr = capsys.readouterr().err
        assert "SIGTERM" in stderr
        assert f"--resume {journal}" in stderr
        # The journal holds the run that finished before the signal.
        journaled = RunJournal(
            journal,
            {"kind": "sweep", "version": 1, "scenario": "resilience-sigterm"},
            resume=True,
        )
        assert len(journaled.entries) == 1
        journaled.close()

        assert main(args + ["--resume", journal, "--json", out]) == 0
        ref = str(tmp_path / "ref.json")
        assert main(args + ["--json", ref]) == 0  # sentinel now exists
        with open(ref, "rb") as a, open(out, "rb") as b:
            assert a.read() == b.read()
