"""Determinism and kernel fast-path tests.

The simulation kernel promises *bit-identical* runs: same seed, same inputs,
same interleaving.  The golden test below freezes that promise into a digest
of the full observable trace (every message delivery with its timestamp plus
every per-client operation record) so any change to event ordering — e.g. in
the ready-deque fast path — fails loudly instead of shifting baselines by an
ulp.  The remaining tests pin the fast-path mechanics themselves: FIFO
ordering across the heap/ready-deque split, the cached partition map, the
detach-on-cancel rule, and the single-sort latency summary.
"""

from __future__ import annotations

import hashlib

import pytest

from repro.core.spec import SystemConfig
from repro.errors import ConfigurationError, SimulationError
from repro.net.latency import UniformLatency
from repro.net.network import Network
from repro.net.simloop import Event, Queue, SimFuture, SimLoop, gather
from repro.sim.cluster import build_static_cluster
from repro.sim.metrics import percentile, summarize
from repro.sim.runner import run_workload
from repro.sim.workload import uniform_workload


# ---------------------------------------------------------------------------
# Golden interleaving digest
# ---------------------------------------------------------------------------


def _trace_digest(seed: int) -> str:
    """Run a seeded scenario and hash its complete observable trace."""
    config = SystemConfig(servers=("s1", "s2", "s3", "s4", "s5"), f=1)
    cluster = build_static_cluster(
        config, latency=UniformLatency(0.5, 1.5, seed=seed), client_count=3
    )
    deliveries = []
    original_deliver = cluster.network._deliver

    def recording_deliver(message):
        deliveries.append(
            f"{cluster.loop.now!r}|{message.sender}>{message.receiver}|{message.kind}"
        )
        original_deliver(message)

    cluster.network._deliver = recording_deliver
    workload = uniform_workload(
        list(cluster.clients), operations_per_client=20,
        read_ratio=0.5, mean_think_time=0.5, seed=seed,
    )
    report = run_workload(cluster, workload)
    lines = list(deliveries)
    for pid in sorted(cluster.clients):
        for record in cluster.clients[pid].history:
            lines.append(
                f"{pid}|{record.kind}|{record.latency!r}|{record.restarts}"
            )
    lines.append(f"events={cluster.loop.events_processed}")
    lines.append(f"sent={cluster.network.messages_sent}")
    lines.append(f"ops={report.operations}")
    return hashlib.sha256("\n".join(lines).encode()).hexdigest()


class TestGoldenInterleaving:
    # The exact event interleaving of the seeded run above, frozen.  If this
    # fails, the kernel's dispatch order changed: every latency baseline is
    # now suspect.  Only update it alongside an intentional, documented
    # semantic change (and regenerate benchmarks/baselines/*).
    GOLDEN = "f0d381fdbab92df4b65792765839bf01106e18980dadfc511876197c396faab9"

    def test_trace_digest_matches_committed_golden(self):
        assert _trace_digest(7) == self.GOLDEN

    def test_trace_digest_is_reproducible_within_a_process(self):
        assert _trace_digest(7) == _trace_digest(7)

    def test_different_seeds_produce_different_traces(self):
        assert _trace_digest(7) != _trace_digest(8)


# ---------------------------------------------------------------------------
# Ready-deque fast path
# ---------------------------------------------------------------------------


class TestReadyDeque:
    def test_zero_delay_events_bypass_the_heap(self):
        loop = SimLoop()
        loop.call_later(0.0, lambda: None)
        loop.call_later(1.0, lambda: None)
        assert len(loop._ready) == 1
        assert len(loop._events) == 1
        assert loop.pending_event_count() == 2

    def test_same_time_fifo_across_heap_and_deque(self):
        # Events landing at the same virtual time must run in scheduling
        # order even when some sit in the heap (scheduled from an earlier
        # time) and some in the ready deque (scheduled at that time).
        loop = SimLoop()
        seen = []

        def tag(name):
            seen.append(name)

        loop.call_later(1.0, tag, "A")  # heap, seq 1

        def schedules_more():
            seen.append("B")
            # Scheduled *at* t=1 while C (an older-sequence heap event at
            # the same time) is still pending: C must run before D.
            loop.call_at(1.0, tag, "D")

        loop.call_later(1.0, schedules_more)  # heap, seq 2
        loop.call_later(1.0, tag, "C")  # heap, seq 3
        loop.run()
        assert seen == ["A", "B", "C", "D"]

    def test_task_steps_preserve_global_fifo(self):
        loop = SimLoop()
        seen = []

        async def worker(name):
            seen.append(f"{name}-a")
            await loop.sleep(0)
            seen.append(f"{name}-b")

        loop.create_task(worker("t1"))
        loop.create_task(worker("t2"))
        loop.run()
        assert seen == ["t1-a", "t2-a", "t1-b", "t2-b"]

    def test_events_processed_counts_every_dispatch(self):
        loop = SimLoop()
        for _ in range(3):
            loop.call_later(0.0, lambda: None)
        for _ in range(2):
            loop.call_later(1.0, lambda: None)
        loop.run()
        assert loop.events_processed == 5

    def test_run_until_respects_budget_with_pending_ready_events(self):
        loop = SimLoop()
        seen = []
        loop.call_later(0.0, lambda: seen.append("now"))
        loop.call_later(5.0, lambda: seen.append("later"))
        assert loop.run(until=1.0) == 1.0
        assert seen == ["now"]

    def test_deadlock_detection_still_works(self):
        from repro.errors import DeadlockError

        loop = SimLoop()
        with pytest.raises(DeadlockError):
            loop.run_until_complete(SimFuture(name="never"))

    def test_queue_and_event_wake_in_fifo_order(self):
        loop = SimLoop()
        queue = Queue()
        event = Event()
        seen = []

        async def getter(name):
            seen.append((name, (await queue.get())))

        async def waiter(name):
            await event.wait()
            seen.append(name)

        loop.create_task(getter("g1"))
        loop.create_task(getter("g2"))
        loop.create_task(waiter("w1"))
        loop.create_task(waiter("w2"))
        loop.call_later(1.0, lambda: (queue.put("x"), queue.put("y")))
        loop.call_later(2.0, event.set)
        loop.run()
        assert seen == [("g1", "x"), ("g2", "y"), "w1", "w2"]


# ---------------------------------------------------------------------------
# Cancelled tasks detach from awaited futures
# ---------------------------------------------------------------------------


class TestCancelDetach:
    def test_cancel_removes_the_done_callback(self):
        loop = SimLoop()
        future = SimFuture(name="awaited")

        async def wait_forever():
            await future

        task = loop.create_task(wait_forever())
        loop.run()  # park the task on the future
        assert len(future._callbacks) == 1
        assert task.cancel()
        assert future._callbacks == []
        # Resolving the future later schedules nothing into the dead task.
        future.set_result("late")
        assert loop.pending_event_count() == 0

    def test_cancel_before_first_step_still_cancels(self):
        loop = SimLoop()

        async def never_runs():  # pragma: no cover - cancelled before step
            raise AssertionError

        task = loop.create_task(never_runs())
        assert task.cancel()
        loop.run()  # the queued first step must be a no-op
        assert task.cancelled()

    def test_remove_done_callback_counts_removals(self):
        future = SimFuture()
        calls = []

        def callback(f):
            calls.append(f)

        future.add_done_callback(callback)
        future.add_done_callback(callback)
        assert future.remove_done_callback(callback) == 2
        future.set_result(1)
        assert calls == []


# ---------------------------------------------------------------------------
# Cached partition map
# ---------------------------------------------------------------------------


class _Sink:
    def __init__(self, pid):
        self.pid = pid
        self.received = []

    def deliver(self, message):
        self.received.append(message)


class TestPartitionCache:
    def _network(self):
        loop = SimLoop()
        network = Network(loop)
        sinks = {pid: _Sink(pid) for pid in ("a", "b", "c")}
        for sink in sinks.values():
            network.register(sink)
        return loop, network, sinks

    def test_partition_map_rebuilt_only_on_topology_change(self):
        _loop, network, _sinks = self._network()
        assert network._group_of == {}
        network.partition([["a"], ["b"]])
        assert network._group_of == {"a": 0, "b": 1}
        assert network._implicit_group == 2
        # Unlisted processes fall into the implicit group.
        assert network._crosses_partition("a", "c")
        assert not network._crosses_partition("c", "c")
        network.heal()
        assert network._group_of == {}
        assert not network._crosses_partition("a", "b")

    def test_partitioned_messages_held_and_released_in_order(self):
        from repro.net.message import Message

        loop, network, sinks = self._network()
        network.partition([["a"], ["b", "c"]])
        network.send(Message(sender="a", receiver="b", kind="m1", payload={}))
        network.send(Message(sender="a", receiver="b", kind="m2", payload={}))
        loop.run()
        assert sinks["b"].received == []
        network.heal()
        loop.run()
        assert [m.kind for m in sinks["b"].received] == ["m1", "m2"]


# ---------------------------------------------------------------------------
# Single-sort summaries
# ---------------------------------------------------------------------------


class TestSummarizeSingleSort:
    def test_matches_per_percentile_reference(self):
        import random

        rng = random.Random(5)
        samples = [rng.expovariate(1.0) for _ in range(997)]
        summary = summarize(samples)
        assert summary.count == 997
        assert summary.mean == pytest.approx(sum(samples) / len(samples))
        assert summary.median == percentile(samples, 0.5)
        assert summary.p95 == percentile(samples, 0.95)
        assert summary.p99 == percentile(samples, 0.99)
        assert summary.maximum == max(samples)

    def test_mean_uses_input_order_sum(self):
        # Bit-compatibility with historical baselines: the mean must be the
        # sum in *sample* order, not sorted order.
        samples = [0.1, 0.2, 0.3, 1e16, -1e16]
        assert summarize(samples).mean == sum(samples) / len(samples)

    def test_empty_samples_rejected(self):
        with pytest.raises(ConfigurationError):
            summarize([])


# ---------------------------------------------------------------------------
# Sharded routing memo
# ---------------------------------------------------------------------------


class TestShardRoutingMemo:
    def test_memo_agrees_with_shard_for_key(self):
        from repro.storage.sharded import ShardedStore, shard_for_key

        class _StubClient:
            history: list = []

        store = ShardedStore("c1", [_StubClient() for _ in range(8)])
        keys = [f"k{i}" for i in range(100)] + [None]
        for key in keys:
            assert store.shard_of(key) == shard_for_key(key, 8)
        # Second pass hits the memo and must agree with itself.
        for key in keys:
            assert store.shard_of(key) == shard_for_key(key, 8)
