"""Tests for the trace-analytics layer (``repro.obs.analysis`` and friends).

Four analyses over recorded traces, plus their CLI wiring:

* invariant checking (structural + semantic, warnings vs errors);
* causal graph / critical path / latency attribution — including the
  telescoping property (per-operation attribution sums to the span
  duration) on traces of real registered scenarios;
* cross-run first-divergence diff;
* windowed virtual-time series.

Every analysis must degrade cleanly on an empty trace.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.errors import ConfigurationError
from repro.experiments.cli import main
from repro.obs import (
    check_trace_invariants,
    critical_path,
    critical_path_report,
    diff_traces,
    extract_operations,
    format_divergence,
    parse_events,
    read_trace,
    trace_series,
)


def _record(seq, ts, cat, name, ph, actor="", args=None, flow=None):
    record = {"seq": seq, "ts": ts, "cat": cat, "name": name, "ph": ph}
    if actor:
        record["actor"] = actor
    if args:
        record["args"] = args
    if flow is not None:
        record["id"] = flow
    return record


def _clean_op_trace():
    """One client op over two servers: B, sends, replies, quorum, E.

    Timeline (client c1, servers s1/s2)::

        t=0.0  B           (op starts)
        t=0.5  s ->s1, s ->s2      (requests leave after 0.5 local time)
        t=1.5  f @s1;  s1 replies  (1.0 network)
        t=1.6  f @s2;  s2 replies
        t=2.5  f @c1 (s1's reply), f @c1 (s2's reply at 2.6)
        t=2.6  quorum phase1, E
    """
    return [
        _record(0, 0.0, "op", "read", "B", "c1", {"protocol": "storage"}),
        _record(1, 0.5, "net", "READ", "s", "c1", {"to": "s1"}, flow=1),
        _record(2, 0.5, "net", "READ", "s", "c1", {"to": "s2"}, flow=2),
        _record(3, 1.5, "net", "READ", "f", "s1", {"from": "c1"}, flow=1),
        _record(4, 1.5, "net", "READ-ACK", "s", "s1", {"to": "c1"}, flow=3),
        _record(5, 1.6, "net", "READ", "f", "s2", {"from": "c1"}, flow=2),
        _record(6, 1.6, "net", "READ-ACK", "s", "s2", {"to": "c1"}, flow=4),
        _record(7, 2.5, "net", "READ-ACK", "f", "c1", {"from": "s1"}, flow=3),
        _record(8, 2.6, "net", "READ-ACK", "f", "c1", {"from": "s2"}, flow=4),
        _record(9, 2.6, "quorum", "phase1", "i", "c1",
                {"protocol": "storage", "size": 2}),
        _record(10, 2.6, "op", "read", "E", "c1",
                {"contacted": 2, "restarts": 0}),
    ]


class TestParseEvents:
    def test_typed_events_mirror_records(self):
        events = parse_events(_clean_op_trace())
        assert len(events) == 11
        assert events[0].cat == "op" and events[0].is_span_begin
        assert events[1].ph == "s" and events[1].flow == 1 and events[1].is_flow
        assert events[10].is_span_end
        assert events[9].args["size"] == 2

    def test_invalid_record_raises_with_position(self):
        bad = _clean_op_trace()
        bad[3]["cat"] = "nonsense"
        with pytest.raises(ConfigurationError, match="record 3"):
            parse_events(bad)

    def test_out_of_order_seq_rejected(self):
        records = _clean_op_trace()
        records[5]["seq"] = 99
        with pytest.raises(ConfigurationError, match="out of order"):
            parse_events(records)

    def test_empty_stream(self):
        assert parse_events([]) == []


class TestInvariants:
    def test_clean_trace_passes(self):
        report = check_trace_invariants(_clean_op_trace())
        assert report.ok
        assert report.findings == []
        assert report.counters["records"] == 11
        assert report.counters["closed_spans"] == 1
        assert report.counters["finished_flows"] == 4
        assert report.counters["quorum_phases"] == 1

    def test_empty_trace_is_ok(self):
        report = check_trace_invariants([])
        assert report.ok
        assert report.counters["records"] == 0
        assert report.as_dict()["findings"] == []

    def test_backwards_ts_is_an_error(self):
        records = _clean_op_trace()
        records[7]["ts"] = 0.1  # after seq 6 at ts=1.6
        report = check_trace_invariants(records)
        assert not report.ok
        assert any(f.check == "monotone-ts" and f.seq == 7
                   for f in report.errors)

    def test_unmatched_end_is_an_error_open_span_a_warning(self):
        records = _clean_op_trace()
        unmatched = records + [
            _record(11, 3.0, "op", "write", "E", "c9", {"restarts": 0})
        ]
        report = check_trace_invariants(unmatched)
        assert any(f.check == "span-balance" and f.severity == "error"
                   for f in report.findings)
        truncated = _clean_op_trace()[:1]  # B only, no E
        report = check_trace_invariants(truncated)
        assert report.ok  # in-flight at end of trace is legal...
        assert any(f.check == "span-balance" and f.severity == "warning"
                   for f in report.findings)

    def test_flow_finish_without_start_is_an_error(self):
        records = _clean_op_trace()
        records[7]["id"] = 77  # finishes a flow nobody started
        report = check_trace_invariants(records)
        assert any(f.check == "flow-pairing" and f.severity == "error"
                   and f.seq == 7 for f in report.findings)

    def test_unfinished_flow_is_a_warning(self):
        records = _clean_op_trace()[:3] + [
            _record(3, 2.6, "op", "read", "E", "c1", {"restarts": 0})
        ]
        report = check_trace_invariants(records)
        assert report.ok
        assert any(f.check == "flow-pairing" and f.severity == "warning"
                   for f in report.findings)

    def test_duplicate_flow_start_is_an_error(self):
        records = _clean_op_trace()
        records[2]["id"] = 1  # same id as seq 1
        report = check_trace_invariants(records)
        assert any(f.check == "flow-pairing" and f.severity == "error"
                   and f.seq == 2 for f in report.findings)

    def test_quorum_outside_operation_span_is_an_error(self):
        records = [
            _record(0, 0.0, "quorum", "phase1", "i", "c1",
                    {"protocol": "storage", "size": 3}),
        ]
        report = check_trace_invariants(records)
        assert any(f.check == "quorum-nesting" for f in report.errors)

    def test_quorum_below_threshold_is_an_error(self):
        records = _clean_op_trace()
        assert check_trace_invariants(records, min_quorum=2).ok
        report = check_trace_invariants(records, min_quorum=3)
        assert any(f.check == "quorum-size" and f.seq == 9
                   for f in report.errors)

    def test_phase_order_violation_is_an_error(self):
        records = _clean_op_trace()
        records.insert(9, _record(9, 2.6, "quorum", "phase2", "i", "c1",
                                  {"protocol": "storage", "size": 2}))
        for seq, record in enumerate(records):
            record["seq"] = seq
        # phase2 then phase1 in the same round
        report = check_trace_invariants(records)
        assert any(f.check == "quorum-phase-order" for f in report.errors)

    def test_restart_resets_the_phase_order(self):
        records = _clean_op_trace()[:1] + [
            _record(1, 0.5, "quorum", "phase2", "i", "c1",
                    {"protocol": "storage", "size": 2}),
            _record(2, 0.6, "op", "restart", "i", "c1",
                    {"op": "read", "protocol": "storage"}),
            _record(3, 0.7, "quorum", "phase1", "i", "c1",
                    {"protocol": "storage", "size": 2}),
            _record(4, 0.8, "op", "read", "E", "c1", {"restarts": 1}),
        ]
        assert check_trace_invariants(records).ok

    def test_transfer_arg_mismatch_is_an_error(self):
        records = [
            _record(0, 0.0, "transfer", "transfer", "B", "s1",
                    {"delta": 0.2, "target": "s2"}),
            _record(1, 1.0, "transfer", "transfer", "E", "s1",
                    {"delta": 0.3, "effective": True, "target": "s2"}),
        ]
        report = check_trace_invariants(records)
        assert any(f.check == "transfer-balance" for f in report.errors)

    def test_effective_transfers_conserve_weight(self):
        records = [
            _record(0, 0.0, "transfer", "transfer", "B", "s1",
                    {"delta": 0.2, "target": "s2"}),
            _record(1, 1.0, "transfer", "transfer", "E", "s1",
                    {"delta": 0.2, "effective": True, "target": "s2"}),
        ]
        report = check_trace_invariants(records)
        assert report.ok
        assert report.counters["effective_transfers"] == 1
        assert report.counters["net_weight"] == pytest.approx(0.0, abs=1e-12)

    def test_golden_fig1_trace_passes(self, tmp_path):
        trace = tmp_path / "fig1.jsonl"
        assert main(["run", "fig1-walkthrough", "--trace", str(trace),
                     "--quiet"]) == 0
        report = check_trace_invariants(read_trace(str(trace)))
        assert report.ok
        assert report.findings == []  # fig1 closes every span and flow


class TestCriticalPath:
    def test_extract_operations(self):
        operations = extract_operations(parse_events(_clean_op_trace()))
        assert len(operations) == 1
        op = operations[0]
        assert (op.actor, op.kind, op.protocol) == ("c1", "read", "storage")
        assert op.begin_seq == 0 and op.end_seq == 10
        assert op.duration == pytest.approx(2.6)
        assert op.contacted == 2 and op.restarts == 0

    def test_attribution_of_the_clean_trace(self):
        report = critical_path_report(_clean_op_trace())
        assert len(report["operations"]) == 1
        row = report["operations"][0]
        attribution = row["attribution"]
        # Gating chain: E <- phase1 <- s2's reply arrival (network 1.0)
        # <- s2's request arrival (network 1.1) <- c1's sends <- B (0.5
        # local time before the requests leave = queue).
        assert attribution["network"] == pytest.approx(2.1)
        assert attribution["queue"] == pytest.approx(0.5)
        assert attribution["quorum"] == pytest.approx(0.0)
        assert attribution["restart"] == pytest.approx(0.0)
        assert sum(attribution.values()) == pytest.approx(row["duration"])
        assert report["by_kind"]["read"]["count"] == 1

    def test_restart_segments_are_attributed_to_restart(self):
        records = [
            _record(0, 0.0, "op", "write", "B", "c1", {"protocol": "storage"}),
            _record(1, 0.0, "net", "W", "s", "c1", {"to": "s1"}, flow=1),
            _record(2, 1.0, "net", "W", "f", "s1", {"from": "c1"}, flow=1),
            _record(3, 2.0, "op", "restart", "i", "c1",
                    {"op": "write", "protocol": "storage"}),
            _record(4, 2.5, "net", "W", "s", "c1", {"to": "s1"}, flow=2),
            _record(5, 3.5, "net", "W", "f", "s1", {"from": "c1"}, flow=2),
            _record(6, 3.5, "net", "W-ACK", "s", "s1", {"to": "c1"}, flow=3),
            _record(7, 4.5, "net", "W-ACK", "f", "c1", {"from": "s1"}, flow=3),
            _record(8, 4.5, "op", "write", "E", "c1", {"restarts": 1}),
        ]
        report = critical_path_report(records)
        attribution = report["operations"][0]["attribution"]
        # Everything before the restart instant (t<=2.0) is wasted-round
        # time; the retry round splits into queue (0.5) + network (2.0).
        assert attribution["restart"] == pytest.approx(2.0)
        assert attribution["queue"] == pytest.approx(0.5)
        assert attribution["network"] == pytest.approx(2.0)
        assert sum(attribution.values()) == pytest.approx(4.5)

    def test_critical_path_steps_connect_end_to_begin(self):
        events = parse_events(_clean_op_trace())
        operation = extract_operations(events)[0]
        steps = critical_path(events, operation)
        assert steps[0].pred_seq == operation.begin_seq
        assert steps[-1].seq == operation.end_seq
        for earlier, later in zip(steps, steps[1:]):
            assert earlier.seq == later.pred_seq
        assert all(step.elapsed >= 0.0 for step in steps)

    def test_empty_trace_reports_no_operations(self):
        report = critical_path_report([])
        assert report == {"records": 0, "operations": [], "by_kind": {},
                          "categories": {"queue": 0.0, "network": 0.0,
                                         "quorum": 0.0, "restart": 0.0}}

    @pytest.mark.parametrize("scenario,params", [
        ("quickstart", ["-p", "workload.operations_per_client=4"]),
        ("static-majority-baseline",
         ["-p", "workload.operations_per_client=5"]),
        ("skewed-reassignment", ["-p", "workload.operations_per_client=3"]),
    ])
    def test_attribution_sums_to_duration_on_registered_scenarios(
        self, tmp_path, scenario, params
    ):
        """The telescoping property on real traces of registered scenarios."""
        trace = tmp_path / f"{scenario}.jsonl"
        assert main(["run", scenario, "--trace", str(trace), "--quiet",
                     *params]) == 0
        records = read_trace(str(trace))
        report = critical_path_report(records)
        assert report["operations"], f"{scenario} produced no operations"
        for row in report["operations"]:
            total = sum(row["attribution"].values())
            assert math.isclose(total, row["duration"],
                                rel_tol=1e-9, abs_tol=1e-9), (scenario, row)
            assert all(v >= 0.0 for v in row["attribution"].values())
        for kind, aggregate in report["by_kind"].items():
            total = sum(aggregate["attribution"].values())
            assert math.isclose(total, aggregate["total_duration"],
                                rel_tol=1e-9, abs_tol=1e-9), (scenario, kind)


class TestDiff:
    def test_identical_traces_diff_to_none(self):
        records = _clean_op_trace()
        assert diff_traces(records, list(records)) is None
        assert diff_traces([], []) is None
        assert format_divergence(None) == "traces are identical"

    def test_planted_single_record_difference_reports_seq_and_fields(self):
        a = _clean_op_trace()
        b = [dict(record) for record in a]
        b[5] = dict(b[5], ts=9.9, actor="s9")
        divergence = diff_traces(a, b)
        assert divergence is not None
        assert divergence["kind"] == "field"
        assert divergence["seq"] == 5
        assert set(divergence["fields"]) == {"ts", "actor"}
        assert divergence["fields"]["ts"] == {"a": 1.6, "b": 9.9}
        assert divergence["fields"]["actor"] == {"a": "s2", "b": "s9"}
        assert len(divergence["context"]) == 3
        assert divergence["context"][-1] == a[4]
        rendered = format_divergence(divergence)
        assert "seq 5" in rendered and "ts:" in rendered

    def test_absent_key_reported_as_absent(self):
        a = _clean_op_trace()
        b = [dict(record) for record in a]
        del b[1]["id"]
        b[1]["ph"] = "i"  # keep it schema-valid: instants need no id
        divergence = diff_traces(a, b)
        assert divergence["seq"] == 1
        assert divergence["fields"]["id"] == {"a": 1, "b": "<absent>"}

    def test_prefix_traces_report_length_divergence(self):
        a = _clean_op_trace()
        divergence = diff_traces(a, a[:4])
        assert divergence["kind"] == "length"
        assert divergence["seq"] == 4
        assert divergence["surplus_in"] == "a"
        assert divergence["first_surplus"] == a[4]
        assert "continues past" in format_divergence(divergence)

    def test_context_is_clamped_at_the_start(self):
        a = _clean_op_trace()
        b = [dict(record) for record in a]
        b[0] = dict(b[0], ts=5.0)
        divergence = diff_traces(a, b, context=5)
        assert divergence["seq"] == 0
        assert divergence["context"] == []


class TestSeries:
    def test_empty_trace_yields_empty_series(self):
        series = trace_series([])
        assert series == {"records": 0, "window": 0.0, "start": 0.0,
                          "end": 0.0, "series": []}

    def test_windows_partition_the_span(self):
        series = trace_series(_clean_op_trace(), window=1.0)
        rows = series["series"]
        assert series["records"] == 11
        assert sum(row["events"] for row in rows) == 11
        assert rows[0]["ops_started"] == 1
        assert rows[-1]["ops_completed"] == 1
        assert rows[0]["in_flight"] == 1
        assert rows[-1]["in_flight"] == 0
        assert sum(row["by_category"].get("net", 0) for row in rows) == 8

    def test_single_timestamp_trace_degrades_to_one_window(self):
        records = [
            _record(0, 1.0, "op", "read", "B", "c1"),
            _record(1, 1.0, "op", "read", "E", "c1"),
        ]
        series = trace_series(records)
        assert len(series["series"]) == 1
        assert series["series"][0]["events"] == 2

    def test_sharded_actors_split_by_shard(self):
        records = [
            _record(0, 0.0, "op", "read", "B", "s1#0"),
            _record(1, 0.5, "op", "read", "E", "s1#0"),
            _record(2, 1.0, "op", "read", "B", "s2#1"),
            _record(3, 1.5, "op", "read", "E", "s2#1"),
        ]
        series = trace_series(records, window=10.0)
        assert series["series"][0]["by_shard"] == {"0": 2, "1": 2}

    def test_empty_windows_carry_the_in_flight_level(self):
        records = [
            _record(0, 0.0, "op", "read", "B", "c1"),
            _record(1, 10.0, "op", "read", "E", "c1"),
        ]
        series = trace_series(records, window=1.0)
        rows = series["series"]
        assert rows[0]["in_flight"] == 1
        assert all(row["in_flight"] == 1 for row in rows[1:-1])
        assert rows[-1]["in_flight"] == 0


class TestTraceCLI:
    """The `python -m repro trace <subcommand>` wiring, exit codes included."""

    @pytest.fixture()
    def traced_run(self, tmp_path):
        trace = tmp_path / "run.jsonl"
        assert main(["run", "quickstart", "--trace", str(trace), "--quiet",
                     "-p", "workload.operations_per_client=3"]) == 0
        return str(trace)

    def test_legacy_trace_file_still_summarises(self, traced_run, capsys):
        assert main(["trace", traced_run]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["records"] > 0 and "digest" in payload

    def test_check_passes_and_writes_report(self, traced_run, tmp_path, capsys):
        report_path = tmp_path / "check.json"
        assert main(["trace", "check", traced_run, "--quiet",
                     "--json", str(report_path)]) == 0
        assert "trace check ok" in capsys.readouterr().out
        payload = json.loads(report_path.read_text())
        assert payload["ok"] is True
        assert payload["counters"]["records"] > 0

    def test_check_fails_on_corrupted_trace(self, traced_run, tmp_path, capsys):
        records = read_trace(traced_run)
        # Drop a span end so its E becomes unmatched -> error severity.
        victim = next(i for i, r in enumerate(records)
                      if r["cat"] == "op" and r["ph"] == "B")
        del records[victim]
        for seq, record in enumerate(records):
            record["seq"] = seq
        bad = tmp_path / "bad.jsonl"
        bad.write_text("".join(json.dumps(r, sort_keys=True) + "\n"
                               for r in records))
        assert main(["trace", "check", str(bad), "--quiet"]) == 1
        assert "FAILED" in capsys.readouterr().out

    def test_critical_path_table_and_json(self, traced_run, tmp_path, capsys):
        out = tmp_path / "cpath.json"
        assert main(["trace", "critical-path", traced_run,
                     "--json", str(out)]) == 0
        assert "critical-path time split" in capsys.readouterr().out
        payload = json.loads(out.read_text())
        assert payload["operations"]
        for row in payload["operations"]:
            assert sum(row["attribution"].values()) == pytest.approx(
                row["duration"], abs=1e-9)

    def test_diff_cli_reports_divergence_and_exit_code(
        self, traced_run, tmp_path, capsys
    ):
        records = read_trace(traced_run)
        records[10]["ts"] = records[10]["ts"] + 0.125
        other = tmp_path / "other.jsonl"
        other.write_text("".join(json.dumps(r, sort_keys=True) + "\n"
                                 for r in records))
        assert main(["trace", "diff", traced_run, str(other)]) == 1
        out = capsys.readouterr().out
        assert "seq 10" in out and "ts:" in out
        assert main(["trace", "diff", traced_run, traced_run]) == 0

    def test_series_cli(self, traced_run, tmp_path, capsys):
        out = tmp_path / "series.json"
        assert main(["trace", "series", traced_run, "--buckets", "5",
                     "--json", str(out)]) == 0
        assert "record(s) over" in capsys.readouterr().out
        payload = json.loads(out.read_text())
        assert sum(row["events"] for row in payload["series"]) \
            == payload["records"]

    def test_digest_check_matches_and_mismatches(self, traced_run, tmp_path,
                                                 capsys):
        from repro.obs import trace_digest

        digest = trace_digest(read_trace(traced_run))
        golden = tmp_path / "golden.sha256"
        golden.write_text(digest + "\n")
        assert main(["trace", "digest", traced_run,
                     "--check", str(golden)]) == 0
        assert "digest ok" in capsys.readouterr().out
        golden.write_text("0" * 64 + "\n")
        assert main(["trace", "digest", traced_run,
                     "--check", str(golden)]) == 1
        assert "mismatch" in capsys.readouterr().err

    def test_digest_matches_file_bytes(self, traced_run, capsys):
        import hashlib

        assert main(["trace", "digest", traced_run]) == 0
        printed = capsys.readouterr().out.strip()
        with open(traced_run, "rb") as handle:
            assert printed == hashlib.sha256(handle.read()).hexdigest()


class TestEmptyTraceCLI:
    """Satellite: every trace subcommand returns clean results on 0 records."""

    @pytest.fixture()
    def empty_trace(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        return str(path)

    def test_summary(self, empty_trace, capsys):
        assert main(["trace", "summary", empty_trace]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["records"] == 0

    def test_summary_export(self, empty_trace, tmp_path):
        out = tmp_path / "empty.chrome.json"
        assert main(["trace", "summary", empty_trace, "--quiet",
                     "--export", str(out)]) == 0
        assert json.loads(out.read_text()) == {"traceEvents": [],
                                               "displayTimeUnit": "ms"}

    def test_digest(self, empty_trace, capsys):
        import hashlib

        assert main(["trace", "digest", empty_trace]) == 0
        assert capsys.readouterr().out.strip() \
            == hashlib.sha256(b"").hexdigest()

    def test_check(self, empty_trace, capsys):
        assert main(["trace", "check", empty_trace]) == 0
        assert "0 record(s)" in capsys.readouterr().out

    def test_critical_path(self, empty_trace, capsys):
        assert main(["trace", "critical-path", empty_trace]) == 0
        assert "no completed operation spans" in capsys.readouterr().out

    def test_series(self, empty_trace, capsys):
        assert main(["trace", "series", empty_trace]) == 0
        assert "empty trace" in capsys.readouterr().out

    def test_diff(self, empty_trace):
        assert main(["trace", "diff", empty_trace, empty_trace]) == 0


class TestTraceAnalyzeBenchmark:
    def test_registered_and_deterministic(self):
        from repro import bench

        assert "trace-analyze" in bench.benchmark_names()
        first = bench.run_benchmark("trace-analyze", quick=True)
        second = bench.run_benchmark("trace-analyze", quick=True)
        assert first.deterministic_view() == second.deterministic_view()
        assert first.counters["findings"] == 0
        assert first.ops == 100

    def test_synthetic_trace_is_invariant_clean(self):
        from repro.bench.suite import _synthetic_trace

        records = _synthetic_trace(clients=2, ops_each=3)
        report = check_trace_invariants(records, min_quorum=3)
        assert report.ok
        assert report.findings == []
