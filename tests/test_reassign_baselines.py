"""Tests for the baseline reassignment protocols and the common endpoint API."""

from __future__ import annotations

import pytest

from repro.consensus.sequencer import Sequencer
from repro.core.protocol import ReassignmentServer
from repro.core.spec import SystemConfig, check_integrity
from repro.errors import ConfigurationError
from repro.net.latency import ConstantLatency
from repro.net.network import Network
from repro.net.simloop import SimLoop, gather
from repro.reassign import (
    ConsensusBasedEndpoint,
    ConsensusBasedServer,
    EpochBasedEndpoint,
    EpochBasedServer,
    RestrictedPairwiseEndpoint,
)
from repro.reassign.epoch_based import EpochBasedCoordinator


def build_consensus_based(n, f):
    loop = SimLoop()
    network = Network(loop, ConstantLatency(1.0))
    config = SystemConfig.uniform(n, f=f)
    sequencer = Sequencer("seq", network, config.servers)
    servers = {
        pid: ConsensusBasedServer(pid, network, config, "seq") for pid in config.servers
    }
    return loop, network, config, sequencer, servers


def build_epoch_based(n, f, epoch_length=10.0):
    loop = SimLoop()
    network = Network(loop, ConstantLatency(1.0))
    config = SystemConfig.uniform(n, f=f)
    coordinator = EpochBasedCoordinator("coord", network, config, epoch_length)
    servers = {
        pid: EpochBasedServer(pid, network, config, "coord") for pid in config.servers
    }
    return loop, network, config, coordinator, servers


def build_restricted(n, f):
    loop = SimLoop()
    network = Network(loop, ConstantLatency(1.0))
    config = SystemConfig.uniform(n, f=f)
    servers = {pid: ReassignmentServer(pid, network, config) for pid in config.servers}
    return loop, network, config, servers


class TestConsensusBasedReassignment:
    def test_transfer_applies_on_all_replicas(self):
        loop, _, config, _, servers = build_consensus_based(5, 1)

        async def go():
            return await servers["s1"].transfer("s1", "s2", 0.4)

        assert loop.run_until_complete(go())
        loop.run()
        for server in servers.values():
            assert server.weights["s2"] == pytest.approx(1.4)

    def test_any_server_may_reassign_any_pair(self):
        """No C1 restriction: s3 moves weight from s1 to s2."""
        loop, _, config, _, servers = build_consensus_based(5, 1)

        async def go():
            return await servers["s3"].transfer("s1", "s2", 0.3)

        assert loop.run_until_complete(go())

    def test_integrity_violating_request_rejected_consistently(self):
        loop, _, config, _, servers = build_consensus_based(5, 2)

        async def go():
            # Moving 0.8 onto s2 would let the two heaviest servers reach half
            # of the total weight: every replica must reject it.
            return await servers["s1"].transfer("s1", "s2", 0.8)

        assert not loop.run_until_complete(go())
        loop.run()
        for server in servers.values():
            assert server.weights == config.initial_weights
            assert check_integrity(server.weights, config.f)

    def test_negative_weights_never_created(self):
        loop, _, config, _, servers = build_consensus_based(5, 1)

        async def go():
            return await servers["s1"].transfer("s1", "s2", 1.5)

        assert not loop.run_until_complete(go())

    def test_crashed_sequencer_blocks_progress(self):
        from repro.errors import DeadlockError

        loop, network, config, _, servers = build_consensus_based(5, 1)
        network.crash("seq")

        async def go():
            await servers["s1"].transfer("s1", "s2", 0.1)

        with pytest.raises(DeadlockError):
            loop.run_until_complete(go())

    def test_endpoint_reports_latency_and_weights(self):
        loop, _, config, _, servers = build_consensus_based(5, 1)
        endpoint = ConsensusBasedEndpoint(servers["s1"])

        async def go():
            return await endpoint.request_transfer("s2", 0.2)

        result = loop.run_until_complete(go())
        assert result.effective
        assert result.latency > 0
        assert result.weights_after["s2"] == pytest.approx(1.2)
        assert endpoint.observed_total_weight() == pytest.approx(5.0)

    def test_invalid_requests_rejected(self):
        loop, _, config, _, servers = build_consensus_based(3, 1)

        async def zero():
            await servers["s1"].transfer("s1", "s2", 0.0)

        async def unknown():
            await servers["s1"].transfer("s1", "s9", 0.1)

        for bad in (zero, unknown):
            with pytest.raises(ConfigurationError):
                loop.run_until_complete(bad())


class TestEpochBasedReassignment:
    def test_completion_waits_for_epoch_boundary(self):
        loop, _, config, coordinator, servers = build_epoch_based(5, 1, epoch_length=20.0)
        endpoint = EpochBasedEndpoint(servers["s1"])

        async def go():
            return await endpoint.request_transfer("s2", 0.2)

        result = loop.run_until_complete(go())
        assert result.effective
        # The request was issued at t~0 but only completed at the first epoch
        # boundary (t >= 20): epoch length dominates completion latency.
        assert result.completed_at >= 20.0

    def test_increment_lands_one_epoch_later(self):
        loop, _, config, coordinator, servers = build_epoch_based(5, 1, epoch_length=10.0)

        async def go():
            await servers["s1"].transfer("s2", 0.2)
            return dict(coordinator.weights)

        weights_after_first_epoch = loop.run_until_complete(go())
        # Decrement applied, increment still pending.
        assert weights_after_first_epoch["s1"] == pytest.approx(0.8)
        assert weights_after_first_epoch["s2"] == pytest.approx(1.0)
        loop.run(until=25.0)
        assert coordinator.weights["s2"] == pytest.approx(1.2)
        coordinator.stop()

    def test_weight_leaks_when_issuer_crashes_before_confirming(self):
        """The deficiency the paper points out: total weight can shrink."""
        loop, network, config, coordinator, servers = build_epoch_based(
            5, 1, epoch_length=10.0
        )

        async def go():
            # Issue the request but crash the issuer before the first epoch
            # boundary: the decrement is applied, the confirmation never
            # arrives, and the increment is dropped at the following boundary.
            loop.create_task(servers["s1"].transfer("s2", 0.2))
            await loop.sleep(5.0)
            network.crash("s1")

        loop.run_until_complete(go())
        loop.run(until=35.0)
        coordinator.stop()
        assert coordinator.leaked_weight == pytest.approx(0.2)
        assert coordinator.total_weight() == pytest.approx(
            config.total_initial_weight - 0.2
        )

    def test_no_leak_when_issuer_stays_correct(self):
        loop, _, config, coordinator, servers = build_epoch_based(5, 1, epoch_length=10.0)

        async def go():
            await servers["s1"].transfer("s2", 0.2)

        loop.run_until_complete(go())
        loop.run(until=45.0)
        coordinator.stop()
        assert coordinator.leaked_weight == 0.0
        assert coordinator.total_weight() == pytest.approx(config.total_initial_weight)

    def test_requests_below_floor_are_rejected(self):
        loop, _, config, coordinator, servers = build_epoch_based(5, 2, epoch_length=10.0)

        async def go():
            return await servers["s1"].transfer("s2", 0.5)

        assert not loop.run_until_complete(go())
        coordinator.stop()

    def test_invalid_requests_rejected(self):
        loop, _, config, coordinator, servers = build_epoch_based(3, 1)

        async def negative():
            await servers["s1"].transfer("s2", -0.1)

        async def to_self():
            await servers["s1"].transfer("s1", 0.1)

        for bad in (negative, to_self):
            with pytest.raises(ConfigurationError):
                loop.run_until_complete(bad())
        coordinator.stop()


class TestEndpointComparability:
    def test_restricted_endpoint_matches_protocol_outcome(self):
        loop, _, config, servers = build_restricted(5, 1)
        endpoint = RestrictedPairwiseEndpoint(servers["s1"])

        async def go():
            return await endpoint.request_transfer("s2", 0.2)

        result = loop.run_until_complete(go())
        assert result.effective
        assert result.weights_after["s1"] == pytest.approx(0.8)
        assert endpoint.observed_total_weight() == pytest.approx(5.0)

    def test_epochless_latency_beats_epoch_based(self):
        """The paper's motivation for an epochless protocol (Section VIII)."""
        loop_a, _, _, servers_a = build_restricted(5, 1)
        paper_endpoint = RestrictedPairwiseEndpoint(servers_a["s1"])

        async def paper_run():
            return await paper_endpoint.request_transfer("s2", 0.1)

        paper_result = loop_a.run_until_complete(paper_run())

        loop_b, _, _, coordinator, servers_b = build_epoch_based(5, 1, epoch_length=50.0)
        epoch_endpoint = EpochBasedEndpoint(servers_b["s1"])

        async def epoch_run():
            return await epoch_endpoint.request_transfer("s2", 0.1)

        epoch_result = loop_b.run_until_complete(epoch_run())
        coordinator.stop()

        assert paper_result.latency < epoch_result.latency
